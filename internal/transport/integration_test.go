package transport

import (
	"fmt"
	"testing"
	"time"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/routing/maxprop"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/routing/spraywait"
	"replidtn/internal/trace"
	"replidtn/internal/vclock"
)

// TestTraceDrivenOverTCPMatchesInProcess replays the same generated
// encounter schedule twice — once through the in-process sync engine and
// once over real TCP loopback connections — and checks that deliveries,
// duplicates, and store contents come out identical. This pins the wire
// protocol to the reference semantics.
func TestTraceDrivenOverTCPMatchesInProcess(t *testing.T) {
	dn := trace.DefaultDieselNet()
	dn.Days = 2
	dn.FleetSize = 6
	dn.ActivePerDay = 5
	dn.Routes = 2
	dn.EncountersPerDay = 40
	encounters, _, buses, err := trace.GenerateDieselNet(dn)
	if err != nil {
		t.Fatal(err)
	}

	for _, policyName := range []string{"epidemic", "spray", "prophet", "maxprop"} {
		policyName := policyName
		t.Run(policyName, func(t *testing.T) {
			local := runSchedule(t, buses, encounters, policyName, false)
			networked := runSchedule(t, buses, encounters, policyName, true)
			for _, bus := range buses {
				ls, ns := local[bus].Stats(), networked[bus].Stats()
				if ls.Delivered != ns.Delivered {
					t.Errorf("%s: delivered %d locally vs %d over TCP", bus, ls.Delivered, ns.Delivered)
				}
				if ns.Duplicates != 0 {
					t.Errorf("%s: %d duplicates over TCP", bus, ns.Duplicates)
				}
				lt, ll, _ := local[bus].StoreLen()
				nt, nl, _ := networked[bus].StoreLen()
				if lt != nt || ll != nl {
					t.Errorf("%s: store %d/%d locally vs %d/%d over TCP", bus, lt, ll, nt, nl)
				}
				if !local[bus].Knowledge().Equal(networked[bus].Knowledge()) {
					t.Errorf("%s: knowledge diverged between local and TCP runs", bus)
				}
			}
		})
	}
}

// runSchedule replays the encounter schedule with each bus sending one
// message to the next bus, either in-process or over TCP.
func runSchedule(t *testing.T, buses []string, encounters []trace.Encounter, policyName string, overTCP bool) map[string]*replica.Replica {
	t.Helper()
	var now int64
	clock := func() int64 { return now }
	nodes := make(map[string]*replica.Replica, len(buses))
	servers := make(map[string]*Server, len(buses))
	addrs := make(map[string]string, len(buses))
	for _, bus := range buses {
		var pol routing.Policy
		switch policyName {
		case "epidemic":
			pol = epidemic.New(10)
		case "spray":
			pol = spraywait.New(8)
		case "prophet":
			pol = prophet.New(prophet.DefaultParams(), clock, bus)
		case "maxprop":
			pol = maxprop.New(vclock.ReplicaID(bus), 3, clock, bus)
		default:
			t.Fatalf("unknown policy %q", policyName)
		}
		nodes[bus] = replica.New(replica.Config{
			ID:           vclock.ReplicaID(bus),
			OwnAddresses: []string{bus},
			Policy:       pol,
		})
		if overTCP {
			srv := NewServer(nodes[bus], 0)
			srv.OnError = func(err error) { t.Errorf("server %s: %v", bus, err) }
			bound, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			servers[bus] = srv
			addrs[bus] = bound.String()
		}
	}
	if overTCP {
		t.Cleanup(func() {
			for _, srv := range servers {
				srv.Close()
			}
		})
	}
	for i, bus := range buses {
		dest := buses[(i+1)%len(buses)]
		nodes[bus].CreateItem(item.Metadata{
			Source:       bus,
			Destinations: []string{dest},
			Kind:         "message",
		}, []byte(fmt.Sprintf("m-%s", bus)))
	}
	for _, e := range encounters {
		now = e.Time
		if overTCP {
			if _, err := Encounter(nodes[e.B], addrs[e.A], 0, 5*time.Second); err != nil {
				t.Fatalf("encounter %s-%s: %v", e.A, e.B, err)
			}
		} else {
			replica.Encounter(nodes[e.A], nodes[e.B], 0)
		}
	}
	return nodes
}
