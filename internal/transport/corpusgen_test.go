//go:build corpusgen

package transport

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. It is excluded from normal builds by the corpusgen tag; run
//
//	go test -tags corpusgen -run WriteFuzzCorpus ./internal/transport/
//
// after a wire-protocol change, and commit the result. The valid transcript
// seed matters most: it is what lets mutation reach the deep protocol path
// (hello → sync request → reverse response) instead of dying on frame one.
func TestWriteFuzzCorpus(t *testing.T) {
	transcript := validClientTranscript(t)
	seeds := map[string][]byte{
		"seed-empty":           {},
		"seed-garbage":         []byte("not a gob stream"),
		"seed-truncated-hello": transcript[:8],
		"seed-valid":           transcript,
		"seed-valid-v3":        validClientTranscriptV3(t),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzServeConn")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
