package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// netDial opens a raw TCP connection for protocol-abuse tests.
func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, time.Second)
}

// encodeHello writes a hello frame on a raw connection.
func encodeHello(conn net.Conn, h hello) error {
	return gob.NewEncoder(conn).Encode(h)
}

// expectClosed verifies the peer closes the connection without sending a
// valid reply.
func expectClosed(conn net.Conn) error {
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var h hello
	if err := gob.NewDecoder(conn).Decode(&h); err == nil {
		return fmt.Errorf("expected connection close, got hello %+v", h)
	}
	return nil
}
