package transport

import (
	"encoding/gob"
	"net"
	"strings"
	"testing"
	"time"

	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
)

// TestDialerOversizedBatchRejected mirrors the server-side oversized-gob test
// on the dialing side: a listener shipping a batch past the dialer's
// wire-byte cap fails the encounter mid-decode with nothing applied.
func TestDialerOversizedBatchRejected(t *testing.T) {
	big := replica.New(replica.Config{ID: "big", OwnAddresses: []string{"addr:big"}})
	big.CreateItem(item.Metadata{
		Source: "addr:big", Destinations: []string{"addr:a"}, Kind: "message",
	}, make([]byte, 64<<10))
	srv := NewServer(big, 0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	knowBefore := a.Knowledge()
	_, err = EncounterOpts(a, addr.String(), 0, 2*time.Second, DialOptions{MaxWireBytes: 4 << 10})
	if err == nil {
		t.Fatal("oversized batch should fail the dialer")
	}
	if !a.Knowledge().Equal(knowBefore) {
		t.Error("oversized batch perturbed the dialer's knowledge")
	}
	if total, _, _ := a.StoreLen(); total != 0 {
		t.Errorf("oversized batch left %d items in the dialer store", total)
	}

	// With the default (generous) cap the same encounter succeeds.
	if _, err := Encounter(a, addr.String(), 0, 2*time.Second); err != nil {
		t.Fatalf("encounter under the default cap: %v", err)
	}
	if total, _, _ := a.StoreLen(); total != 1 {
		t.Errorf("store has %d items after clean encounter, want 1", total)
	}
}

// TestSecondListenRejected: a server listens on at most one address; a second
// Listen is rejected instead of silently leaking the first listener, and
// Close reaps the active one.
func TestSecondListenRejected(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	srv := NewServer(a, 0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil || !strings.Contains(err.Error(), "already listening") {
		t.Fatalf("second Listen = %v, want already-listening error", err)
	}
	// The first listener still serves.
	b := replica.New(replica.Config{ID: "b", OwnAddresses: []string{"addr:b"}})
	if _, err := Encounter(b, addr.String(), 0, 2*time.Second); err != nil {
		t.Fatalf("encounter after rejected Listen: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Close released the port: a fresh raw listener can bind it.
	ln, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln.Close()
}

// TestEncounterRetryBoundedByTimeout: the retry loop's backoff sleeps count
// against the caller's timeout, so a generous retry budget against a dead
// port still returns within (roughly) the deadline.
func TestEncounterRetryBoundedByTimeout(t *testing.T) {
	// Reserve a port, then free it so every dial is refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	const timeout = 250 * time.Millisecond
	start := time.Now()
	// Without deadline accounting this would sleep 100ms * (2^20 - 1).
	_, err = EncounterRetry(a, addr, 0, timeout, DialOptions{Retries: 20, Backoff: 100 * time.Millisecond})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dialing a dead port should fail")
	}
	if elapsed > timeout+500*time.Millisecond {
		t.Errorf("EncounterRetry blocked %v past its %v budget", elapsed, timeout)
	}
}

// TestTransportMetricsMatchEncounterResult runs one instrumented encounter
// and checks both sides' counters, byte accounting, and spans agree with the
// EncounterResult and with each other.
func TestTransportMetricsMatchEncounterResult(t *testing.T) {
	a := node(t, "a", "addr:a")
	b := node(t, "b", "addr:b")
	sendMsg(a, "addr:a", "addr:b")
	sendMsg(b, "addr:b", "addr:a")

	serverM := &obs.TransportMetrics{}
	srv := NewServer(a, 0)
	srv.Metrics = serverM
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dialM := &obs.TransportMetrics{}
	res, err := EncounterOpts(b, addr.String(), 0, testTimeout, DialOptions{Metrics: dialM})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil { // flush the handler before reading counters
		t.Fatal(err)
	}

	ss, ds := serverM.Snapshot(), dialM.Snapshot()
	if ss.EncountersServed != 1 || ss.EncounterErrors != 0 {
		t.Errorf("server counters: %+v", ss)
	}
	if ds.EncountersDialed != 1 || ds.EncounterErrors != 0 {
		t.Errorf("dialer counters: %+v", ds)
	}
	// The two ends of one TCP stream must agree byte for byte.
	if ss.BytesRead != ds.BytesWritten || ss.BytesWritten != ds.BytesRead {
		t.Errorf("wire bytes disagree: server r/w %d/%d, dialer r/w %d/%d",
			ss.BytesRead, ss.BytesWritten, ds.BytesRead, ds.BytesWritten)
	}
	// Frames per side: hello, request, response, reverse leg, done = 5 each way.
	if ss.FramesRead != 3 || ss.FramesWritten != 4 {
		t.Errorf("server frames r/w = %d/%d, want 3/4", ss.FramesRead, ss.FramesWritten)
	}
	if ds.FramesRead != 4 || ds.FramesWritten != 3 {
		t.Errorf("dialer frames r/w = %d/%d, want 4/3", ds.FramesRead, ds.FramesWritten)
	}

	spans := dialM.Spans.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("dialer spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Role != obs.RoleDial || sp.Peer != "a" || sp.Err != "" {
		t.Errorf("dialer span = %+v", sp)
	}
	if sp.ItemsSent != res.AtoB.Sent || sp.ItemsApplied != res.BtoA.Apply.Stored {
		t.Errorf("span items sent/applied = %d/%d, result %d/%d",
			sp.ItemsSent, sp.ItemsApplied, res.AtoB.Sent, res.BtoA.Apply.Stored)
	}
	srvSpans := serverM.Spans.Snapshot()
	if len(srvSpans) != 1 || srvSpans[0].Role != obs.RoleServe || srvSpans[0].Peer != "b" {
		t.Errorf("server spans = %+v", srvSpans)
	}
	if srvSpans[0].DurationMicros < 0 || ss.EncounterMicros.Count != 1 {
		t.Errorf("duration accounting: span %d, hist %+v", srvSpans[0].DurationMicros, ss.EncounterMicros)
	}
}

// TestMetricsClassifyValidationRejections: a structurally malformed frame
// from a hostile peer lands in the validation counter and its span carries
// the validation error class.
func TestMetricsClassifyValidationRejections(t *testing.T) {
	a := node(t, "a", "addr:a")
	m := &obs.TransportMetrics{}
	srv := NewServer(a, 0)
	srv.Metrics = m
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := netDial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(hello{Version: protocolBaseVersion, ID: "evil"}); err != nil {
		t.Fatal(err)
	}
	var reply hello
	if err := dec.Decode(&reply); err != nil {
		t.Fatal(err)
	}
	// A sync request with no knowledge must be rejected before the replica:
	// the server hangs up without sending a sync response.
	if err := enc.Encode(&replica.SyncRequest{TargetID: "evil"}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp replica.SyncResponse
	if err := dec.Decode(&resp); err == nil {
		t.Error("expected the server to drop the malformed request")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.ValidationRejected != 1 || snap.EncounterErrors != 1 || snap.EncountersServed != 0 {
		t.Errorf("counters after malformed request: %+v", snap)
	}
	spans := m.Spans.Snapshot()
	if len(spans) != 1 || spans[0].Err != "validation" {
		t.Errorf("spans after malformed request: %+v", spans)
	}
}

// TestMetricsCountDialRetries: each backoff retry increments the retry
// counter.
func TestMetricsCountDialRetries(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	m := &obs.TransportMetrics{}
	_, err = EncounterRetry(a, addr, 0, 2*time.Second, DialOptions{
		Retries: 2, Backoff: 10 * time.Millisecond, Metrics: m,
	})
	if err == nil {
		t.Fatal("dead port should fail")
	}
	if got := m.DialRetries.Value(); got != 2 {
		t.Errorf("DialRetries = %d, want 2", got)
	}
	if got := m.EncounterErrors.Value(); got != 3 {
		t.Errorf("EncounterErrors = %d, want 3 (one per attempt)", got)
	}
}
