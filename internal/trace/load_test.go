package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTraceDir exports a trace to a temp directory like cmd/tracegen does.
func writeTraceDir(t *testing.T, tr *Trace) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, fn func(*os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
	}
	write(EncountersFile, func(f *os.File) error { return WriteEncounters(f, tr.Encounters) })
	write(MessagesFile, func(f *os.File) error { return WriteMessages(f, tr.Messages) })
	write(AssignmentsFile, func(f *os.File) error { return WriteAssignments(f, tr.Assignment) })
	return dir
}

func TestLoadDirRoundTrip(t *testing.T) {
	dn := DefaultDieselNet()
	dn.Days = 3
	dn.FleetSize = 8
	dn.ActivePerDay = 6
	dn.EncountersPerDay = 60
	wl := DefaultWorkload()
	wl.Users = 10
	wl.Messages = 20
	wl.InjectDays = 2
	orig, err := Generate(dn, wl, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := writeTraceDir(t, orig)
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Days != orig.Days {
		t.Errorf("days = %d, want %d", loaded.Days, orig.Days)
	}
	if !reflect.DeepEqual(loaded.Encounters, orig.Encounters) {
		t.Error("encounters diverged through the CSV round trip")
	}
	if !reflect.DeepEqual(loaded.Messages, orig.Messages) {
		t.Error("messages diverged through the CSV round trip")
	}
	if !reflect.DeepEqual(loaded.Assignment, orig.Assignment) {
		t.Error("assignments diverged through the CSV round trip")
	}
	// The derived rosters must cover every assigned bus; derived users must
	// cover every message endpoint.
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(loaded.Users) != len(orig.Users) {
		t.Errorf("users = %d, want %d", len(loaded.Users), len(orig.Users))
	}
}

func TestLoadDirMissingFiles(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory should fail")
	}
}

func TestLoadDirEmptyTrace(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{EncountersFile, MessagesFile, AssignmentsFile} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDir(dir); err == nil {
		t.Error("trace with no events should fail")
	}
}

func TestLoadDirDerivesRosterFromEncounters(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		EncountersFile:  "3600,busA,busB\n90000,busB,busC\n",
		MessagesFile:    "m1,3700,u1,u2\n",
		AssignmentsFile: "0,u1,busA\n0,u2,busC\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Days != 2 {
		t.Errorf("days = %d, want 2", tr.Days)
	}
	if got := tr.Roster[0]; !reflect.DeepEqual(got, []string{"busA", "busB", "busC"}) {
		t.Errorf("day-0 roster = %v", got)
	}
	if got := tr.Roster[1]; !reflect.DeepEqual(got, []string{"busB", "busC"}) {
		t.Errorf("day-1 roster = %v", got)
	}
	if !reflect.DeepEqual(tr.Users, []string{"u1", "u2"}) {
		t.Errorf("users = %v", tr.Users)
	}
}
