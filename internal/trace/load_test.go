package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTraceDir exports a trace to a temp directory like cmd/tracegen does.
func writeTraceDir(t *testing.T, tr *Trace) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, fn func(*os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
	}
	write(EncountersFile, func(f *os.File) error { return WriteEncounters(f, tr.Encounters) })
	write(MessagesFile, func(f *os.File) error { return WriteMessages(f, tr.Messages) })
	write(AssignmentsFile, func(f *os.File) error { return WriteAssignments(f, tr.Assignment) })
	return dir
}

func TestLoadDirRoundTrip(t *testing.T) {
	dn := DefaultDieselNet()
	dn.Days = 3
	dn.FleetSize = 8
	dn.ActivePerDay = 6
	dn.EncountersPerDay = 60
	wl := DefaultWorkload()
	wl.Users = 10
	wl.Messages = 20
	wl.InjectDays = 2
	orig, err := Generate(dn, wl, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir := writeTraceDir(t, orig)
	loaded, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Days != orig.Days {
		t.Errorf("days = %d, want %d", loaded.Days, orig.Days)
	}
	if !reflect.DeepEqual(loaded.Encounters, orig.Encounters) {
		t.Error("encounters diverged through the CSV round trip")
	}
	if !reflect.DeepEqual(loaded.Messages, orig.Messages) {
		t.Error("messages diverged through the CSV round trip")
	}
	if !reflect.DeepEqual(loaded.Assignment, orig.Assignment) {
		t.Error("assignments diverged through the CSV round trip")
	}
	// The derived rosters must cover every assigned bus; derived users must
	// cover every message endpoint.
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(loaded.Users) != len(orig.Users) {
		t.Errorf("users = %d, want %d", len(loaded.Users), len(orig.Users))
	}
}

func TestLoadDirMissingFiles(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty directory should fail")
	}
}

func TestLoadDirEmptyTrace(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{EncountersFile, MessagesFile, AssignmentsFile} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("trace with no events should fail")
	}
	if !strings.Contains(err.Error(), "empty encounter schedule") {
		t.Errorf("empty schedule should be named in the error: %v", err)
	}
}

// writeDirFiles populates a trace directory from literal CSV contents.
func writeDirFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadDirEmptyEncounterSchedule(t *testing.T) {
	// Messages alone are not a runnable scenario: with no contacts nothing
	// can ever be delivered, so the load must fail loudly.
	dir := writeDirFiles(t, map[string]string{
		EncountersFile:  "",
		MessagesFile:    "m1,3700,u1,u2\n",
		AssignmentsFile: "0,u1,busA\n0,u2,busB\n",
	})
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("encounter-free trace should fail")
	}
	if !strings.Contains(err.Error(), "empty encounter schedule") {
		t.Errorf("error should explain the rejection: %v", err)
	}
}

func TestLoadDirRejectsOutOfOrderEncounters(t *testing.T) {
	dir := writeDirFiles(t, map[string]string{
		EncountersFile:  "7200,busA,busB\n3600,busB,busC\n",
		MessagesFile:    "m1,3700,u1,u2\n",
		AssignmentsFile: "0,u1,busA\n0,u2,busC\n",
	})
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("out-of-order encounter schedule should fail")
	}
	if !strings.Contains(err.Error(), "out of order") {
		t.Errorf("error should name the ordering violation: %v", err)
	}
}

func TestLoadDirRejectsUnknownEncounterNode(t *testing.T) {
	dir := writeDirFiles(t, map[string]string{
		NodesFile:       "busA\nbusB\n",
		EncountersFile:  "3600,busA,busX\n",
		MessagesFile:    "m1,3700,u1,u2\n",
		AssignmentsFile: "0,u1,busA\n0,u2,busB\n",
	})
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("encounter naming a node outside the roster should fail")
	}
	if !strings.Contains(err.Error(), `unknown node "busX"`) {
		t.Errorf("error should name the unknown node: %v", err)
	}
}

func TestLoadDirRejectsUnknownAssignmentNode(t *testing.T) {
	dir := writeDirFiles(t, map[string]string{
		NodesFile:       "busA\nbusB\n",
		EncountersFile:  "3600,busA,busB\n",
		MessagesFile:    "m1,3700,u1,u2\n",
		AssignmentsFile: "0,u1,busA\n0,u2,busZ\n",
	})
	_, err := LoadDir(dir)
	if err == nil {
		t.Fatal("assignment naming a node outside the roster should fail")
	}
	if !strings.Contains(err.Error(), `unknown node "busZ"`) {
		t.Errorf("error should name the unknown node: %v", err)
	}
}

func TestLoadDirRosterIncludesSilentNodes(t *testing.T) {
	// A declared node that never encounters anyone still belongs to the
	// fleet — exactly what nodes.csv exists to express.
	dir := writeDirFiles(t, map[string]string{
		NodesFile:       "busA\nbusB\nbusQuiet\n",
		EncountersFile:  "3600,busA,busB\n",
		MessagesFile:    "m1,3700,u1,u2\n",
		AssignmentsFile: "0,u1,busA\n0,u2,busB\n",
	})
	tr, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Buses, []string{"busA", "busB", "busQuiet"}) {
		t.Errorf("fleet = %v, want the declared roster including the silent node", tr.Buses)
	}
}

func TestLoadDirDerivesRosterFromEncounters(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		EncountersFile:  "3600,busA,busB\n90000,busB,busC\n",
		MessagesFile:    "m1,3700,u1,u2\n",
		AssignmentsFile: "0,u1,busA\n0,u2,busC\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Days != 2 {
		t.Errorf("days = %d, want 2", tr.Days)
	}
	if got := tr.Roster[0]; !reflect.DeepEqual(got, []string{"busA", "busB", "busC"}) {
		t.Errorf("day-0 roster = %v", got)
	}
	if got := tr.Roster[1]; !reflect.DeepEqual(got, []string{"busB", "busC"}) {
		t.Errorf("day-1 roster = %v", got)
	}
	if !reflect.DeepEqual(tr.Users, []string{"u1", "u2"}) {
		t.Errorf("users = %v", tr.Users)
	}
}
