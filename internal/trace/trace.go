// Package trace provides the evaluation workloads: a synthetic vehicular
// encounter trace calibrated to the DieselNet bus testbed statistics the
// paper reports, and a synthetic e-mail workload with the heavy-tailed
// sender/recipient structure of the Enron dataset.
//
// The real traces (CRAWDAD umass/diesel and the UC Berkeley Enron corpus) are
// not redistributable here, so generators reproduce their relevant aggregate
// properties — encounter volume and daily rhythm, partial daily fleet
// coverage, weak pair predictability, and Zipf-skewed communication pairs —
// and CSV loaders accept the real traces where available. The substitution
// rationale is recorded in DESIGN.md §5.
package trace

import (
	"fmt"
	"sort"
)

// Encounter is one contact between two nodes. Times are seconds from the
// start of the experiment; day d spans [d*SecondsPerDay, (d+1)*SecondsPerDay).
type Encounter struct {
	Time int64
	A, B string
}

// Message is one injected application message between user endpoints.
type Message struct {
	ID   string
	Time int64
	From string
	To   string
}

// SecondsPerDay is the length of a trace day.
const SecondsPerDay = 24 * 3600

// Trace bundles a complete experiment input: the encounter schedule, the
// message workload, and the per-day assignment of users to nodes.
type Trace struct {
	// Days is the number of experiment days.
	Days int
	// Buses is the full fleet (not all active every day).
	Buses []string
	// Users are the e-mail endpoint addresses.
	Users []string
	// Encounters is the time-sorted contact schedule.
	Encounters []Encounter
	// Messages is the time-sorted injection schedule.
	Messages []Message
	// Roster lists the active buses for each day.
	Roster [][]string
	// Assignment maps, for each day, user address → bus ID.
	Assignment []map[string]string
}

// Day returns the day index for a trace time.
func Day(t int64) int { return int(t / SecondsPerDay) }

// Validate checks internal consistency: sorted schedules, assignments that
// reference rostered buses, and message endpoints drawn from Users.
func (tr *Trace) Validate() error {
	if !sort.SliceIsSorted(tr.Encounters, func(i, j int) bool {
		return tr.Encounters[i].Time < tr.Encounters[j].Time
	}) {
		return fmt.Errorf("trace: encounters not sorted by time")
	}
	if !sort.SliceIsSorted(tr.Messages, func(i, j int) bool {
		return tr.Messages[i].Time < tr.Messages[j].Time
	}) {
		return fmt.Errorf("trace: messages not sorted by time")
	}
	if len(tr.Roster) != tr.Days || len(tr.Assignment) != tr.Days {
		return fmt.Errorf("trace: roster/assignment cover %d/%d days, want %d",
			len(tr.Roster), len(tr.Assignment), tr.Days)
	}
	users := make(map[string]struct{}, len(tr.Users))
	for _, u := range tr.Users {
		users[u] = struct{}{}
	}
	for d, asg := range tr.Assignment {
		active := make(map[string]struct{}, len(tr.Roster[d]))
		for _, b := range tr.Roster[d] {
			active[b] = struct{}{}
		}
		for u, b := range asg {
			if _, ok := users[u]; !ok {
				return fmt.Errorf("trace: day %d assigns unknown user %q", d, u)
			}
			if _, ok := active[b]; !ok {
				return fmt.Errorf("trace: day %d assigns %q to inactive bus %q", d, u, b)
			}
		}
	}
	for _, e := range tr.Encounters {
		if e.A == e.B {
			return fmt.Errorf("trace: self-encounter of %q at %d", e.A, e.Time)
		}
		if Day(e.Time) >= tr.Days {
			return fmt.Errorf("trace: encounter at %d beyond day %d", e.Time, tr.Days)
		}
	}
	for _, m := range tr.Messages {
		if _, ok := users[m.From]; !ok {
			return fmt.Errorf("trace: message %s from unknown user %q", m.ID, m.From)
		}
		if _, ok := users[m.To]; !ok {
			return fmt.Errorf("trace: message %s to unknown user %q", m.ID, m.To)
		}
		if m.From == m.To {
			return fmt.Errorf("trace: message %s is self-addressed", m.ID)
		}
	}
	return nil
}

// Stats summarizes a trace for reporting and sanity tests.
type Stats struct {
	Days             int
	TotalEncounters  int
	EncountersPerDay float64
	AvgActiveBuses   float64
	TotalMessages    int
	DistinctPairs    int
}

// ComputeStats derives summary statistics.
func (tr *Trace) ComputeStats() Stats {
	st := Stats{
		Days:            tr.Days,
		TotalEncounters: len(tr.Encounters),
		TotalMessages:   len(tr.Messages),
	}
	if tr.Days > 0 {
		st.EncountersPerDay = float64(len(tr.Encounters)) / float64(tr.Days)
		active := 0
		for _, r := range tr.Roster {
			active += len(r)
		}
		st.AvgActiveBuses = float64(active) / float64(tr.Days)
	}
	pairs := make(map[string]struct{})
	for _, e := range tr.Encounters {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		pairs[a+"|"+b] = struct{}{}
	}
	st.DistinctPairs = len(pairs)
	return st
}
