package trace

import (
	"reflect"
	"testing"
)

func TestFromTraceMaterializeRoundTrip(t *testing.T) {
	dn := DefaultDieselNet()
	dn.Days = 2
	dn.FleetSize = 6
	dn.ActivePerDay = 4
	dn.EncountersPerDay = 40
	wl := DefaultWorkload()
	wl.Users = 8
	wl.Messages = 12
	wl.InjectDays = 2
	orig, err := Generate(dn, wl, 11)
	if err != nil {
		t.Fatal(err)
	}
	sc := FromTrace("dieselnet", orig)
	if sc.Name() != "dieselnet" {
		t.Errorf("name = %q", sc.Name())
	}
	if sc.Days() != orig.Days {
		t.Errorf("days = %d, want %d", sc.Days(), orig.Days)
	}
	back, err := Materialize(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, orig) {
		t.Error("FromTrace→Materialize should reproduce the trace exactly")
	}
}

func TestScenarioStreamingStopsEarly(t *testing.T) {
	tr, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	sc := FromTrace("d", tr)
	var got int
	sc.Encounters(func(Encounter) bool {
		got++
		return got < 5
	})
	if got != 5 {
		t.Errorf("enumeration visited %d encounters after early stop, want 5", got)
	}
	got = 0
	sc.Messages(func(Message) bool {
		got++
		return false
	})
	if got != 1 {
		t.Errorf("message enumeration visited %d after immediate stop, want 1", got)
	}
}

func TestMaterializeRejectsInvalidScenario(t *testing.T) {
	tr, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	broken := *tr
	broken.Encounters = append([]Encounter{{Time: 0, A: "x", B: "x"}}, tr.Encounters...)
	if _, err := Materialize(FromTrace("broken", &broken)); err == nil {
		t.Error("self-encounter should fail materialization")
	}
}
