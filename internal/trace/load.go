package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Standard file names inside a trace directory (the format cmd/tracegen
// writes and real converted traces should follow). NodesFile is optional:
// when present it declares the full fleet, and any encounter or assignment
// row naming a node outside it fails the load.
const (
	NodesFile       = "nodes.csv"
	EncountersFile  = "encounters.csv"
	MessagesFile    = "messages.csv"
	AssignmentsFile = "assignments.csv"
)

// LoadDir reads a complete trace from a directory containing encounters.csv,
// messages.csv, and assignments.csv, plus an optional nodes.csv roster. The
// user list, day count, and daily rosters are derived from the data; the
// fleet is taken from nodes.csv when present (a mistyped node in any row is
// then an error, not a phantom extra node) and derived otherwise. This is
// the drop-in path for real traces (e.g. a converted CRAWDAD DieselNet
// contact log) and for scenarios exported by cmd/tracegen.
func LoadDir(dir string) (*Trace, error) {
	roster, err := loadNodes(filepath.Join(dir, NodesFile))
	if err != nil {
		return nil, err
	}
	encounters, err := loadEncounters(filepath.Join(dir, EncountersFile))
	if err != nil {
		return nil, err
	}
	if len(encounters) == 0 {
		return nil, fmt.Errorf("trace: %s: empty encounter schedule — a scenario with no contacts can never deliver anything", dir)
	}
	messages, err := loadMessages(filepath.Join(dir, MessagesFile))
	if err != nil {
		return nil, err
	}
	assignment, err := loadAssignments(filepath.Join(dir, AssignmentsFile))
	if err != nil {
		return nil, err
	}
	if roster != nil {
		known := make(map[string]struct{}, len(roster))
		for _, n := range roster {
			known[n] = struct{}{}
		}
		for i, e := range encounters {
			for _, n := range []string{e.A, e.B} {
				if _, ok := known[n]; !ok {
					return nil, fmt.Errorf("trace: %s: encounters row %d names unknown node %q (not in %s)",
						dir, i+1, n, NodesFile)
				}
			}
		}
		for d, asg := range assignment {
			for u, b := range asg {
				if _, ok := known[b]; !ok {
					return nil, fmt.Errorf("trace: %s: day %d assigns user %q to unknown node %q (not in %s)",
						dir, d, u, b, NodesFile)
				}
			}
		}
	}

	days := len(assignment)
	for _, e := range encounters {
		if d := Day(e.Time) + 1; d > days {
			days = d
		}
	}
	for _, m := range messages {
		if d := Day(m.Time) + 1; d > days {
			days = d
		}
	}
	if days == 0 {
		return nil, fmt.Errorf("trace: %s contains no events", dir)
	}

	busSet := make(map[string]struct{})
	for _, n := range roster {
		busSet[n] = struct{}{}
	}
	userSet := make(map[string]struct{})
	// Rosters: a bus is active on a day if it encounters someone or hosts a
	// user that day.
	rosterSets := make([]map[string]struct{}, days)
	for d := range rosterSets {
		rosterSets[d] = make(map[string]struct{})
	}
	for _, e := range encounters {
		busSet[e.A] = struct{}{}
		busSet[e.B] = struct{}{}
		d := Day(e.Time)
		rosterSets[d][e.A] = struct{}{}
		rosterSets[d][e.B] = struct{}{}
	}
	fullAssignment := make([]map[string]string, days)
	for d := range fullAssignment {
		if d < len(assignment) {
			fullAssignment[d] = assignment[d]
		} else {
			fullAssignment[d] = map[string]string{}
		}
		for u, b := range fullAssignment[d] {
			userSet[u] = struct{}{}
			busSet[b] = struct{}{}
			rosterSets[d][b] = struct{}{}
		}
	}
	for _, m := range messages {
		userSet[m.From] = struct{}{}
		userSet[m.To] = struct{}{}
	}

	tr := &Trace{
		Days:       days,
		Buses:      sortedKeys(busSet),
		Users:      sortedKeys(userSet),
		Encounters: encounters,
		Messages:   messages,
		Roster:     make([][]string, days),
		Assignment: fullAssignment,
	}
	for d, set := range rosterSets {
		tr.Roster[d] = sortedKeys(set)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", dir, err)
	}
	return tr, nil
}

// loadNodes reads the optional roster file; a missing file returns a nil
// roster (fleet derived from the data), any other error fails the load.
func loadNodes(path string) ([]string, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadNodes(f)
}

func loadEncounters(path string) ([]Encounter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadEncounters(f)
}

func loadMessages(path string) ([]Message, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadMessages(f)
}

func loadAssignments(path string) ([]map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadAssignments(f)
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
