package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Standard file names inside a trace directory (the format cmd/tracegen
// writes and real converted traces should follow).
const (
	EncountersFile  = "encounters.csv"
	MessagesFile    = "messages.csv"
	AssignmentsFile = "assignments.csv"
)

// LoadDir reads a complete trace from a directory containing encounters.csv,
// messages.csv, and assignments.csv, deriving the fleet, user list, day
// count, and daily rosters from the data. This is the drop-in path for real
// traces (e.g. a converted CRAWDAD DieselNet contact log).
func LoadDir(dir string) (*Trace, error) {
	encounters, err := loadEncounters(filepath.Join(dir, EncountersFile))
	if err != nil {
		return nil, err
	}
	messages, err := loadMessages(filepath.Join(dir, MessagesFile))
	if err != nil {
		return nil, err
	}
	assignment, err := loadAssignments(filepath.Join(dir, AssignmentsFile))
	if err != nil {
		return nil, err
	}

	days := len(assignment)
	for _, e := range encounters {
		if d := Day(e.Time) + 1; d > days {
			days = d
		}
	}
	for _, m := range messages {
		if d := Day(m.Time) + 1; d > days {
			days = d
		}
	}
	if days == 0 {
		return nil, fmt.Errorf("trace: %s contains no events", dir)
	}

	busSet := make(map[string]struct{})
	userSet := make(map[string]struct{})
	// Rosters: a bus is active on a day if it encounters someone or hosts a
	// user that day.
	rosterSets := make([]map[string]struct{}, days)
	for d := range rosterSets {
		rosterSets[d] = make(map[string]struct{})
	}
	for _, e := range encounters {
		busSet[e.A] = struct{}{}
		busSet[e.B] = struct{}{}
		d := Day(e.Time)
		rosterSets[d][e.A] = struct{}{}
		rosterSets[d][e.B] = struct{}{}
	}
	fullAssignment := make([]map[string]string, days)
	for d := range fullAssignment {
		if d < len(assignment) {
			fullAssignment[d] = assignment[d]
		} else {
			fullAssignment[d] = map[string]string{}
		}
		for u, b := range fullAssignment[d] {
			userSet[u] = struct{}{}
			busSet[b] = struct{}{}
			rosterSets[d][b] = struct{}{}
		}
	}
	for _, m := range messages {
		userSet[m.From] = struct{}{}
		userSet[m.To] = struct{}{}
	}

	tr := &Trace{
		Days:       days,
		Buses:      sortedKeys(busSet),
		Users:      sortedKeys(userSet),
		Encounters: encounters,
		Messages:   messages,
		Roster:     make([][]string, days),
		Assignment: fullAssignment,
	}
	for d, set := range rosterSets {
		tr.Roster[d] = sortedKeys(set)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %s: %w", dir, err)
	}
	return tr, nil
}

func loadEncounters(path string) ([]Encounter, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadEncounters(f)
}

func loadMessages(path string) ([]Message, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadMessages(f)
}

func loadAssignments(path string) ([]map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadAssignments(f)
}

func sortedKeys(set map[string]struct{}) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
