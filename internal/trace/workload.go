package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// WorkloadConfig parameterizes the synthetic e-mail workload. The defaults
// reproduce the paper's Enron-driven setup: 490 messages injected at
// two-minute intervals during a two-hour morning window on each of the first
// eight days, with Zipf-skewed sender activity and per-sender contact lists
// so that, as in the Enron corpus, a few pairs exchange most of the mail.
type WorkloadConfig struct {
	// Users is the number of e-mail endpoints.
	Users int
	// Messages is the total number of messages injected.
	Messages int
	// InjectDays is the number of days over which injection runs.
	InjectDays int
	// WindowStart is the injection window start, seconds from midnight.
	WindowStart int64
	// Interval is the spacing between injections in seconds.
	Interval int64
	// ZipfS is the Zipf skew for sender activity and contact preference.
	ZipfS float64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultWorkload returns the paper-calibrated configuration.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{
		Users:       60,
		Messages:    490,
		InjectDays:  8,
		WindowStart: 8 * 3600,
		Interval:    120,
		ZipfS:       1.4,
		Seed:        2,
	}
}

// GenerateWorkload produces the user list and the injection schedule.
func GenerateWorkload(cfg WorkloadConfig) (users []string, messages []Message, err error) {
	if cfg.Users < 2 || cfg.Messages <= 0 || cfg.InjectDays <= 0 ||
		cfg.Interval <= 0 || cfg.ZipfS <= 1 {
		return nil, nil, fmt.Errorf("trace: invalid workload config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	users = make([]string, cfg.Users)
	for i := range users {
		users[i] = fmt.Sprintf("user%03d", i)
	}

	// Sender activity: Zipf over a random permutation of users, so heavy
	// mailers are arbitrary identities, not always user000.
	senderRank := rng.Perm(cfg.Users)
	senderZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Users-1))

	// Per-sender contact list: a random permutation of the other users; the
	// recipient is drawn Zipf-first from it, so each sender has a few heavy
	// correspondents and a long tail.
	contacts := make(map[int][]int, cfg.Users)
	contactZipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Users-2))
	for u := 0; u < cfg.Users; u++ {
		list := make([]int, 0, cfg.Users-1)
		for _, v := range rng.Perm(cfg.Users) {
			if v != u {
				list = append(list, v)
			}
		}
		contacts[u] = list
	}

	perDay := cfg.Messages / cfg.InjectDays
	extra := cfg.Messages % cfg.InjectDays
	id := 0
	for d := 0; d < cfg.InjectDays; d++ {
		count := perDay
		if d < extra {
			count++
		}
		for k := 0; k < count; k++ {
			from := senderRank[int(senderZipf.Uint64())]
			to := contacts[from][int(contactZipf.Uint64())]
			t := int64(d)*SecondsPerDay + cfg.WindowStart + int64(k)*cfg.Interval
			messages = append(messages, Message{
				ID:   fmt.Sprintf("msg%04d", id),
				Time: t,
				From: users[from],
				To:   users[to],
			})
			id++
		}
	}
	sort.Slice(messages, func(i, j int) bool { return messages[i].Time < messages[j].Time })
	return users, messages, nil
}

// GenerateAssignments distributes users uniformly over each day's active
// buses, re-drawn every day as the paper's experimental setup describes.
func GenerateAssignments(users []string, roster [][]string, seed int64) []map[string]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]map[string]string, len(roster))
	for d, active := range roster {
		asg := make(map[string]string, len(users))
		for _, u := range users {
			asg[u] = active[rng.Intn(len(active))]
		}
		out[d] = asg
	}
	return out
}

// Generate builds a complete experiment trace from the two generator
// configurations plus an assignment seed.
func Generate(dn DieselNetConfig, wl WorkloadConfig, assignSeed int64) (*Trace, error) {
	encounters, roster, buses, err := GenerateDieselNet(dn)
	if err != nil {
		return nil, err
	}
	users, messages, err := GenerateWorkload(wl)
	if err != nil {
		return nil, err
	}
	tr := &Trace{
		Days:       dn.Days,
		Buses:      buses,
		Users:      users,
		Encounters: encounters,
		Messages:   messages,
		Roster:     roster,
		Assignment: GenerateAssignments(users, roster, assignSeed),
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// Default generates the paper-calibrated trace used by the experiments.
func Default() (*Trace, error) {
	return Generate(DefaultDieselNet(), DefaultWorkload(), 3)
}
