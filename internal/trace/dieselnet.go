package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// DieselNetConfig parameterizes the synthetic vehicular encounter generator.
//
// The generator reproduces the aggregate statistics the paper reports for its
// DieselNet slice — 17 selected days, an average of 23 active buses per day,
// roughly 16,000 encounters in total, all between 08:00 and 23:00 — together
// with the structural properties the evaluation depends on:
//
//   - Contacts are concentrated: buses sharing a route pass each other many
//     times a day, while an arbitrary active pair meets with only moderate
//     probability, so a sender's bus often fails to meet the destination's
//     bus on the injection day (the paper's basic substrate delivers only
//     ~30% of messages within 12 hours).
//   - Buses run daily shifts, so pairs can be active yet never overlap.
//   - Route assignments persist imperfectly day to day (RouteChurn), leaving
//     encounter patterns only weakly predictable — the property the paper
//     credits for PROPHET's modest showing on DieselNet.
type DieselNetConfig struct {
	// Days is the number of experiment days.
	Days int
	// FleetSize is the total number of buses; a daily roster is drawn from
	// the fleet, so schedules vary day to day as in the real testbed.
	FleetSize int
	// ActivePerDay is the number of buses scheduled each day.
	ActivePerDay int
	// Routes is the number of bus routes; same-route buses meet repeatedly.
	Routes int
	// EncountersPerDay is the target daily contact volume.
	EncountersPerDay int
	// DayStart and DayEnd bound encounter times within a day, in seconds
	// from midnight.
	DayStart, DayEnd int64
	// ShiftMinHours and ShiftMaxHours bound each bus's daily activity
	// window; encounters require overlapping windows.
	ShiftMinHours, ShiftMaxHours float64
	// MixProbability is the probability that an arbitrary overlapping active
	// pair meets at least once in a day through city-wide mixing.
	MixProbability float64
	// MixSkew is the log-normal σ of per-bus sociability: mixing intensity
	// for a pair is proportional to the product of the buses' sociability
	// weights. Zero gives uniform mixing; larger values concentrate mixing
	// on hub buses while leaving others nearly isolated, as in the real
	// testbed — this starves gradient-based forwarding (PROPHET) much more
	// than flooding.
	MixSkew float64
	// RouteChurn is the per-day probability that a bus runs a route other
	// than its home route.
	RouteChurn float64
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultDieselNet returns the paper-calibrated configuration.
func DefaultDieselNet() DieselNetConfig {
	return DieselNetConfig{
		Days:             17,
		FleetSize:        26,
		ActivePerDay:     23,
		Routes:           6,
		EncountersPerDay: 941, // ≈16,000 over 17 days
		DayStart:         8 * 3600,
		DayEnd:           23 * 3600,
		ShiftMinHours:    4,
		ShiftMaxHours:    12,
		MixProbability:   0.20,
		MixSkew:          0.9,
		RouteChurn:       0.60,
		Seed:             1,
	}
}

// GenerateDieselNet produces the encounter schedule and daily rosters.
func GenerateDieselNet(cfg DieselNetConfig) (encounters []Encounter, roster [][]string, buses []string, err error) {
	if cfg.Days <= 0 || cfg.FleetSize < 2 || cfg.ActivePerDay < 2 ||
		cfg.ActivePerDay > cfg.FleetSize || cfg.Routes <= 0 ||
		cfg.EncountersPerDay <= 0 || cfg.DayEnd <= cfg.DayStart ||
		cfg.ShiftMinHours <= 0 || cfg.ShiftMaxHours < cfg.ShiftMinHours ||
		cfg.MixProbability < 0 || cfg.MixProbability >= 1 {
		return nil, nil, nil, fmt.Errorf("trace: invalid DieselNet config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	buses = make([]string, cfg.FleetSize)
	homeRoute := make(map[string]int, cfg.FleetSize)
	sociability := make(map[string]float64, cfg.FleetSize)
	for i := range buses {
		buses[i] = fmt.Sprintf("bus%02d", i)
		homeRoute[buses[i]] = i % cfg.Routes
		sociability[buses[i]] = math.Exp(cfg.MixSkew * rng.NormFloat64())
	}

	roster = make([][]string, cfg.Days)
	for d := 0; d < cfg.Days; d++ {
		perm := rng.Perm(cfg.FleetSize)
		active := make([]string, cfg.ActivePerDay)
		for i := 0; i < cfg.ActivePerDay; i++ {
			active[i] = buses[perm[i]]
		}
		sort.Strings(active)
		roster[d] = active

		// Today's route and shift for each active bus.
		route := make(map[string]int, len(active))
		shiftStart := make(map[string]int64, len(active))
		shiftEnd := make(map[string]int64, len(active))
		for _, b := range active {
			rt := homeRoute[b]
			if rng.Float64() < cfg.RouteChurn {
				rt = rng.Intn(cfg.Routes)
			}
			route[b] = rt
			length := int64((cfg.ShiftMinHours +
				rng.Float64()*(cfg.ShiftMaxHours-cfg.ShiftMinHours)) * 3600)
			latestStart := cfg.DayEnd - length
			start := cfg.DayStart
			if latestStart > cfg.DayStart {
				start += rng.Int63n(latestStart - cfg.DayStart + 1)
			}
			end := start + length
			if end > cfg.DayEnd {
				end = cfg.DayEnd
			}
			shiftStart[b], shiftEnd[b] = start, end
		}

		// Pair census: same-route overlapping pairs meet repeatedly; every
		// other overlapping pair meets via city-wide mixing with probability
		// MixProbability. The same-route rate absorbs whatever volume the
		// mixing component leaves of the daily target.
		type pair struct{ a, b string }
		var samePairs, mixPairs []pair
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				a, b := active[i], active[j]
				if overlap(shiftStart, shiftEnd, a, b) <= 0 {
					continue
				}
				if route[a] == route[b] {
					samePairs = append(samePairs, pair{a, b})
				} else {
					mixPairs = append(mixPairs, pair{a, b})
				}
			}
		}
		// The mixing budget (total expected mixing encounters) matches what a
		// uniform per-pair rate of −ln(1−MixProbability) would produce, but
		// is distributed over pairs proportionally to the product of the
		// buses' sociability weights, concentrating contact on hub buses.
		lambdaUniform := -math.Log(1 - cfg.MixProbability)
		mixBudget := lambdaUniform * float64(len(mixPairs))
		totalWeight := 0.0
		weights := make([]float64, len(mixPairs))
		for i, p := range mixPairs {
			weights[i] = sociability[p.a] * sociability[p.b]
			totalWeight += weights[i]
		}
		lambdaSame := 0.0
		if len(samePairs) > 0 {
			lambdaSame = (float64(cfg.EncountersPerDay) - mixBudget) / float64(len(samePairs))
			if lambdaSame < 1 {
				lambdaSame = 1
			}
		}

		dayBase := int64(d) * SecondsPerDay
		emit := func(p pair, count int) {
			lo := maxInt64(shiftStart[p.a], shiftStart[p.b])
			hi := minInt64(shiftEnd[p.a], shiftEnd[p.b])
			for k := 0; k < count; k++ {
				t := dayBase + lo + rng.Int63n(hi-lo+1)
				encounters = append(encounters, Encounter{Time: t, A: p.a, B: p.b})
			}
		}
		for _, p := range samePairs {
			emit(p, poisson(rng, lambdaSame))
		}
		for i, p := range mixPairs {
			lambda := lambdaUniform
			if totalWeight > 0 && cfg.MixSkew > 0 {
				lambda = mixBudget * weights[i] / totalWeight
			}
			emit(p, poisson(rng, lambda))
		}
	}
	sort.Slice(encounters, func(i, j int) bool {
		if encounters[i].Time != encounters[j].Time {
			return encounters[i].Time < encounters[j].Time
		}
		if encounters[i].A != encounters[j].A {
			return encounters[i].A < encounters[j].A
		}
		return encounters[i].B < encounters[j].B
	})
	return encounters, roster, buses, nil
}

// overlap returns the overlap duration of two buses' shifts in seconds.
func overlap(start, end map[string]int64, a, b string) int64 {
	lo := maxInt64(start[a], start[b])
	hi := minInt64(end[a], end[b])
	return hi - lo
}

// poisson draws from Poisson(lambda) via Knuth's method, splitting large
// lambdas to avoid underflow.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	n := 0
	for lambda > 30 {
		n += poisson(rng, 30)
		lambda -= 30
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return n + k
		}
		k++
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
