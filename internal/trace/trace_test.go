package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDieselNetStatistics(t *testing.T) {
	cfg := DefaultDieselNet()
	encounters, roster, buses, err := GenerateDieselNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(buses) != cfg.FleetSize {
		t.Errorf("fleet = %d, want %d", len(buses), cfg.FleetSize)
	}
	if len(roster) != cfg.Days {
		t.Fatalf("roster covers %d days, want %d", len(roster), cfg.Days)
	}
	for d, r := range roster {
		if len(r) != cfg.ActivePerDay {
			t.Errorf("day %d roster = %d buses, want %d", d, len(r), cfg.ActivePerDay)
		}
	}
	// The Poisson components make the daily volume stochastic; the total
	// should land within a few percent of the target.
	want := float64(cfg.Days * cfg.EncountersPerDay)
	if got := float64(len(encounters)); math.Abs(got-want)/want > 0.10 {
		t.Errorf("encounters = %d, want ≈%.0f", len(encounters), want)
	}
	// All encounters inside the daily window and between that day's roster.
	for _, e := range encounters {
		d := Day(e.Time)
		off := e.Time - int64(d)*SecondsPerDay
		if off < cfg.DayStart || off >= cfg.DayEnd {
			t.Fatalf("encounter at offset %d outside window", off)
		}
		if !contains(roster[d], e.A) || !contains(roster[d], e.B) {
			t.Fatalf("day %d encounter between unrostered buses %s,%s", d, e.A, e.B)
		}
	}
}

func TestGenerateDieselNetDeterministic(t *testing.T) {
	cfg := DefaultDieselNet()
	e1, r1, _, err := GenerateDieselNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, r2, _, err := GenerateDieselNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1, e2) || !reflect.DeepEqual(r1, r2) {
		t.Error("same seed must generate identical traces")
	}
	cfg.Seed++
	e3, _, _, err := GenerateDieselNet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(e1, e3) {
		t.Error("different seeds should differ")
	}
}

func TestGenerateDieselNetInvalidConfig(t *testing.T) {
	bad := DefaultDieselNet()
	bad.ActivePerDay = bad.FleetSize + 1
	if _, _, _, err := GenerateDieselNet(bad); err == nil {
		t.Error("oversubscribed roster should fail")
	}
	bad = DefaultDieselNet()
	bad.DayEnd = bad.DayStart
	if _, _, _, err := GenerateDieselNet(bad); err == nil {
		t.Error("empty window should fail")
	}
}

func TestGenerateWorkloadShape(t *testing.T) {
	cfg := DefaultWorkload()
	users, msgs, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != cfg.Users {
		t.Errorf("users = %d, want %d", len(users), cfg.Users)
	}
	if len(msgs) != cfg.Messages {
		t.Errorf("messages = %d, want %d", len(msgs), cfg.Messages)
	}
	for _, m := range msgs {
		if m.From == m.To {
			t.Fatalf("self-addressed message %s", m.ID)
		}
		if Day(m.Time) >= cfg.InjectDays {
			t.Fatalf("message %s injected on day %d, after injection stops", m.ID, Day(m.Time))
		}
	}
	// Sender activity must be skewed: the busiest sender should send several
	// times the mean.
	bySender := map[string]int{}
	for _, m := range msgs {
		bySender[m.From]++
	}
	max := 0
	for _, c := range bySender {
		if c > max {
			max = c
		}
	}
	mean := float64(len(msgs)) / float64(len(bySender))
	if float64(max) < 2*mean {
		t.Errorf("workload not skewed: max sender %d vs mean %.1f", max, mean)
	}
}

func TestGenerateAssignmentsCoverage(t *testing.T) {
	users := []string{"u1", "u2", "u3"}
	roster := [][]string{{"bus1", "bus2"}, {"bus3"}}
	asg := GenerateAssignments(users, roster, 1)
	if len(asg) != 2 {
		t.Fatalf("assignments cover %d days", len(asg))
	}
	for d, dayAsg := range asg {
		if len(dayAsg) != len(users) {
			t.Errorf("day %d assigns %d users, want %d", d, len(dayAsg), len(users))
		}
		for u, b := range dayAsg {
			if !contains(roster[d], b) {
				t.Errorf("day %d: %s on unrostered %s", d, u, b)
			}
		}
	}
}

func TestDefaultTraceValidates(t *testing.T) {
	tr, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if st.Days != 17 {
		t.Errorf("days = %d", st.Days)
	}
	if math.Abs(st.AvgActiveBuses-23) > 0.01 {
		t.Errorf("avg active buses = %v, want 23", st.AvgActiveBuses)
	}
	if st.TotalEncounters < 15000 || st.TotalEncounters > 17000 {
		t.Errorf("total encounters = %d, want ≈16000", st.TotalEncounters)
	}
	if st.TotalMessages != 490 {
		t.Errorf("messages = %d, want 490", st.TotalMessages)
	}
	if st.DistinctPairs < 100 {
		t.Errorf("only %d distinct pairs ever meet", st.DistinctPairs)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	// Unsorted encounters.
	broken := *tr
	broken.Encounters = append([]Encounter(nil), tr.Encounters...)
	broken.Encounters[0], broken.Encounters[1] = broken.Encounters[1], broken.Encounters[0]
	if broken.Encounters[0].Time != broken.Encounters[1].Time {
		if err := broken.Validate(); err == nil {
			t.Error("unsorted encounters should fail validation")
		}
	}
	// Unknown user in assignment.
	broken2 := *tr
	broken2.Assignment = append([]map[string]string(nil), tr.Assignment...)
	bad := map[string]string{"ghost": tr.Roster[0][0]}
	broken2.Assignment[0] = bad
	if err := broken2.Validate(); err == nil {
		t.Error("unknown assigned user should fail validation")
	}
	// Self-encounter.
	broken3 := *tr
	broken3.Encounters = append([]Encounter{{Time: 0, A: "x", B: "x"}}, tr.Encounters...)
	if err := broken3.Validate(); err == nil {
		t.Error("self-encounter should fail validation")
	}
}

func TestEncounterCSVRoundTrip(t *testing.T) {
	in := []Encounter{
		{Time: 50, A: "bus03", B: "bus04"},
		{Time: 100, A: "bus01", B: "bus02"},
	}
	var buf bytes.Buffer
	if err := WriteEncounters(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEncounters(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip = %+v", out)
	}
}

func TestNodesCSVRoundTrip(t *testing.T) {
	in := []string{"bus01", "bus02", "bus17"}
	var buf bytes.Buffer
	if err := WriteNodes(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadNodes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip = %+v", out)
	}
}

func TestReadNodesErrors(t *testing.T) {
	if _, err := ReadNodes(bytes.NewBufferString("a\na\n")); err == nil {
		t.Error("duplicate node should fail")
	}
	if _, err := ReadNodes(bytes.NewBufferString("a\n\"\"\nb\n")); err == nil {
		t.Error("empty node name should fail")
	}
}

func TestMessageCSVRoundTrip(t *testing.T) {
	in := []Message{{ID: "m1", Time: 10, From: "u1", To: "u2"}}
	var buf bytes.Buffer
	if err := WriteMessages(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessages(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip = %+v", out)
	}
}

func TestAssignmentCSVRoundTrip(t *testing.T) {
	in := []map[string]string{
		{"u1": "bus1", "u2": "bus2"},
		{"u1": "bus3"},
	}
	var buf bytes.Buffer
	if err := WriteAssignments(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadAssignments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip = %+v", out)
	}
}

func TestReadEncountersErrors(t *testing.T) {
	if _, err := ReadEncounters(bytes.NewBufferString("notatime,a,b\n")); err == nil {
		t.Error("bad time should fail")
	}
	if _, err := ReadEncounters(bytes.NewBufferString("1,a\n")); err == nil {
		t.Error("wrong field count should fail")
	}
	_, err := ReadEncounters(bytes.NewBufferString("100,a,b\n50,c,d\n"))
	if err == nil {
		t.Fatal("out-of-order encounters should fail instead of being silently re-sorted")
	}
	if !strings.Contains(err.Error(), "row 2") {
		t.Errorf("error should name the offending row: %v", err)
	}
}

func TestReadMessagesRejectsOutOfOrder(t *testing.T) {
	_, err := ReadMessages(bytes.NewBufferString("m1,100,u1,u2\nm2,50,u2,u1\n"))
	if err == nil {
		t.Fatal("out-of-order messages should fail instead of being silently re-sorted")
	}
	if !strings.Contains(err.Error(), "row 2") {
		t.Errorf("error should name the offending row: %v", err)
	}
}

func TestReadAssignmentsErrors(t *testing.T) {
	if _, err := ReadAssignments(bytes.NewBufferString("x,u,b\n")); err == nil {
		t.Error("bad day should fail")
	}
	if _, err := ReadAssignments(bytes.NewBufferString("-1,u,b\n")); err == nil {
		t.Error("negative day should fail")
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
