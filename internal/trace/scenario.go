package trace

import "fmt"

// Scenario is a complete, replayable experiment input: a node roster, a
// time-ordered encounter schedule, and a message workload with its per-day
// user→node assignment. It is the seam between scenario *sources* — the
// DieselNet generator, the CSV loader, and the synthetic mobility generators
// in internal/mobility — and scenario *consumers* (the emulation engine, the
// experiment drivers, and cmd/tracegen).
//
// Implementations must be deterministic: enumerating a scenario twice yields
// byte-identical schedules, because every experiment and differential test
// depends on replaying exactly the same input. Generators therefore derive
// everything from explicit seeds (dtnlint's determinism analyzer enforces
// this mechanically for the trace and mobility packages).
//
// Encounters and Messages are push iterators rather than slices so that
// generated scenarios can be streamed: a million-node mobility scenario
// produces its contact schedule tick by tick and never has to materialize
// it, which is what lets cmd/tracegen export scenarios far larger than
// memory-resident traces. Materialize folds a scenario into a concrete
// *Trace when a consumer (the in-memory emulation engine) needs random
// access.
type Scenario interface {
	// Name identifies the scenario in logs, tables, and benchmark labels.
	Name() string
	// Days is the number of experiment days the schedule spans.
	Days() int
	// Nodes is the sorted roster of replication hosts (the fleet).
	Nodes() []string
	// Users is the sorted list of workload endpoint addresses.
	Users() []string
	// Roster lists the nodes active on one day.
	Roster(day int) []string
	// Assignment maps each user to its host node for one day.
	Assignment(day int) map[string]string
	// Encounters streams the time-ordered contact schedule. Enumeration
	// stops early when yield returns false.
	Encounters(yield func(Encounter) bool)
	// Messages streams the time-ordered injection schedule. Enumeration
	// stops early when yield returns false.
	Messages(yield func(Message) bool)
}

// Materialize folds a scenario into a validated Trace, the random-access
// form the emulation engine consumes. The encounter schedule is collected
// whole, so callers at extreme scale should size scenarios to fit memory
// (the streaming interfaces exist for consumers that do not need random
// access, like CSV export).
func Materialize(s Scenario) (*Trace, error) {
	days := s.Days()
	tr := &Trace{
		Days:       days,
		Buses:      s.Nodes(),
		Users:      s.Users(),
		Roster:     make([][]string, days),
		Assignment: make([]map[string]string, days),
	}
	for d := 0; d < days; d++ {
		tr.Roster[d] = s.Roster(d)
		tr.Assignment[d] = s.Assignment(d)
	}
	s.Encounters(func(e Encounter) bool {
		tr.Encounters = append(tr.Encounters, e)
		return true
	})
	s.Messages(func(m Message) bool {
		tr.Messages = append(tr.Messages, m)
		return true
	})
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: scenario %s: %w", s.Name(), err)
	}
	return tr, nil
}

// traceScenario adapts a materialized Trace to the Scenario interface, so
// the DieselNet generator's output and CSV-loaded traces flow through the
// same scenario plumbing as the streaming mobility generators.
type traceScenario struct {
	name string
	tr   *Trace
}

// FromTrace wraps an existing trace as a Scenario.
func FromTrace(name string, tr *Trace) Scenario {
	return &traceScenario{name: name, tr: tr}
}

func (s *traceScenario) Name() string    { return s.name }
func (s *traceScenario) Days() int       { return s.tr.Days }
func (s *traceScenario) Nodes() []string { return s.tr.Buses }
func (s *traceScenario) Users() []string { return s.tr.Users }

func (s *traceScenario) Roster(day int) []string { return s.tr.Roster[day] }

func (s *traceScenario) Assignment(day int) map[string]string { return s.tr.Assignment[day] }

func (s *traceScenario) Encounters(yield func(Encounter) bool) {
	for _, e := range s.tr.Encounters {
		if !yield(e) {
			return
		}
	}
}

func (s *traceScenario) Messages(yield func(Message) bool) {
	for _, m := range s.tr.Messages {
		if !yield(m) {
			return
		}
	}
}
