package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The CSV formats allow real traces (e.g. the CRAWDAD DieselNet contact
// records or an Enron-derived message schedule) to be substituted for the
// synthetic generators, and let generated traces be exported for inspection.
//
//	nodes:      node                 (optional roster; one node per row)
//	encounters: time,busA,busB
//	messages:   id,time,from,to
//	assignment: day,user,bus
//
// The readers are strict about schedule order: encounter and message rows
// must be non-decreasing in time. Every writer in this repository emits
// sorted schedules, so an out-of-order row means the file was corrupted or
// hand-edited — silently re-sorting it would mask the damage and hand the
// engine a scenario that no longer matches what the file claims to contain.

// WriteEncounters writes the encounter schedule as CSV.
func WriteEncounters(w io.Writer, encounters []Encounter) error {
	cw := csv.NewWriter(w)
	for _, e := range encounters {
		if err := cw.Write([]string{strconv.FormatInt(e.Time, 10), e.A, e.B}); err != nil {
			return fmt.Errorf("trace: write encounters: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadEncounters parses an encounter CSV. Rows must already be sorted by
// time; an out-of-order row is rejected with its row number rather than
// silently re-sorted (see the package comment above).
func ReadEncounters(r io.Reader) ([]Encounter, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	var out []Encounter
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read encounters: %w", err)
		}
		t, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: encounter time %q: %w", rec[0], err)
		}
		if n := len(out); n > 0 && t < out[n-1].Time {
			return nil, fmt.Errorf("trace: encounters row %d out of order: time %d after %d",
				n+1, t, out[n-1].Time)
		}
		out = append(out, Encounter{Time: t, A: rec[1], B: rec[2]})
	}
	return out, nil
}

// WriteMessages writes the message schedule as CSV.
func WriteMessages(w io.Writer, messages []Message) error {
	cw := csv.NewWriter(w)
	for _, m := range messages {
		rec := []string{m.ID, strconv.FormatInt(m.Time, 10), m.From, m.To}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write messages: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadMessages parses a message CSV. Rows must already be sorted by time;
// an out-of-order row is rejected with its row number rather than silently
// re-sorted.
func ReadMessages(r io.Reader) ([]Message, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	var out []Message
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read messages: %w", err)
		}
		t, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: message time %q: %w", rec[1], err)
		}
		if n := len(out); n > 0 && t < out[n-1].Time {
			return nil, fmt.Errorf("trace: messages row %d out of order: time %d after %d",
				n+1, t, out[n-1].Time)
		}
		out = append(out, Message{ID: rec[0], Time: t, From: rec[2], To: rec[3]})
	}
	return out, nil
}

// WriteNodes writes the node roster as CSV, one node per row. A roster file
// lets a trace directory declare its full fleet explicitly — including nodes
// that never appear in an encounter — and turns a mistyped node name in an
// encounter row into a load error instead of a phantom extra node.
func WriteNodes(w io.Writer, nodes []string) error {
	cw := csv.NewWriter(w)
	for _, n := range nodes {
		if err := cw.Write([]string{n}); err != nil {
			return fmt.Errorf("trace: write nodes: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadNodes parses a roster CSV into a sorted node list, rejecting empty
// names and duplicates.
func ReadNodes(r io.Reader) ([]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 1
	seen := make(map[string]struct{})
	var out []string
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read nodes: %w", err)
		}
		if rec[0] == "" {
			return nil, fmt.Errorf("trace: nodes row %d is empty", len(out)+1)
		}
		if _, dup := seen[rec[0]]; dup {
			return nil, fmt.Errorf("trace: duplicate node %q in roster", rec[0])
		}
		seen[rec[0]] = struct{}{}
		out = append(out, rec[0])
	}
	sort.Strings(out)
	return out, nil
}

// WriteAssignments writes the per-day user→bus assignment as CSV.
func WriteAssignments(w io.Writer, assignment []map[string]string) error {
	cw := csv.NewWriter(w)
	for d, asg := range assignment {
		users := make([]string, 0, len(asg))
		for u := range asg {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, u := range users {
			rec := []string{strconv.Itoa(d), u, asg[u]}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("trace: write assignments: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadAssignments parses an assignment CSV into per-day maps. Days must be
// non-negative; the result covers 0..maxDay.
func ReadAssignments(r io.Reader) ([]map[string]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	byDay := make(map[int]map[string]string)
	maxDay := -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read assignments: %w", err)
		}
		d, err := strconv.Atoi(rec[0])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("trace: assignment day %q invalid", rec[0])
		}
		if byDay[d] == nil {
			byDay[d] = make(map[string]string)
		}
		byDay[d][rec[1]] = rec[2]
		if d > maxDay {
			maxDay = d
		}
	}
	out := make([]map[string]string, maxDay+1)
	for d := range out {
		if byDay[d] == nil {
			byDay[d] = make(map[string]string)
		}
		out[d] = byDay[d]
	}
	return out, nil
}
