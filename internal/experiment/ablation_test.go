package experiment

import (
	"strings"
	"testing"
)

func TestAblationEpidemicTTLMonotone(t *testing.T) {
	tr := smallTrace(t)
	rows, err := AblationEpidemicTTL(tr, []int{1, 4, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A larger hop budget cannot hurt delivery or raise delay, and must not
	// reduce traffic.
	for i := 1; i < len(rows); i++ {
		if rows[i].Delivered12h < rows[i-1].Delivered12h-1e-9 {
			t.Errorf("delivery dropped from %v to %v with larger TTL",
				rows[i-1].Delivered12h, rows[i].Delivered12h)
		}
		if rows[i].ItemsTransferred < rows[i-1].ItemsTransferred {
			t.Errorf("traffic dropped with larger TTL")
		}
	}
}

func TestAblationSprayCopiesTradeoff(t *testing.T) {
	tr := smallTrace(t)
	rows, err := AblationSprayCopies(tr, []int{2, 16})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].Delivered12h < rows[0].Delivered12h-1e-9 {
		t.Errorf("more copies should not hurt delivery: %v vs %v",
			rows[0].Delivered12h, rows[1].Delivered12h)
	}
	if rows[1].CopiesAtEnd < rows[0].CopiesAtEnd {
		t.Errorf("more copies should not shrink the footprint")
	}
}

func TestAblationMaxPropThreshold(t *testing.T) {
	tr := smallTrace(t)
	rows, err := AblationMaxPropThreshold(tr, []int{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Delivered12h <= 0 {
			t.Errorf("%s delivered nothing", r.Setting)
		}
	}
}

func TestAblationBandwidthMonotoneTraffic(t *testing.T) {
	tr := smallTrace(t)
	rows, err := AblationBandwidth(tr, []int{1, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ItemsTransferred > rows[1].ItemsTransferred ||
		rows[1].ItemsTransferred > rows[2].ItemsTransferred {
		t.Errorf("traffic must grow with the budget: %d, %d, %d",
			rows[0].ItemsTransferred, rows[1].ItemsTransferred, rows[2].ItemsTransferred)
	}
	if rows[2].Setting != "budget=inf" {
		t.Errorf("unlimited setting label = %q", rows[2].Setting)
	}
}

func TestAblationStorageMonotoneFootprint(t *testing.T) {
	tr := smallTrace(t)
	rows, err := AblationStorage(tr, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].CopiesAtEnd < rows[0].CopiesAtEnd {
		t.Errorf("unlimited storage should hold at least as many copies: %v vs %v",
			rows[0].CopiesAtEnd, rows[1].CopiesAtEnd)
	}
	if rows[1].Delivered12h < rows[0].Delivered12h-1e-9 {
		t.Errorf("unlimited storage should not deliver less")
	}
}

func TestAblationEviction(t *testing.T) {
	tr := smallTrace(t)
	rows, err := AblationEviction(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 policies x 2 strategies)", len(rows))
	}
	for _, r := range rows {
		if r.Delivered12h <= 0 {
			t.Errorf("%s delivered nothing", r.Setting)
		}
	}
	out := FormatAblation("eviction", rows)
	if !strings.Contains(out, "fifo") || !strings.Contains(out, "cost(hops)") {
		t.Errorf("missing strategy labels in:\n%s", out)
	}
}

func TestAblationByteBudget(t *testing.T) {
	tr := smallTrace(t)
	rows, err := AblationByteBudget(tr, []int64{2 << 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Delivered12h > rows[1].Delivered12h+1e-9 {
		t.Errorf("tight byte budget should not beat unlimited: %v vs %v",
			rows[0].Delivered12h, rows[1].Delivered12h)
	}
	if rows[0].ItemsTransferred > rows[1].ItemsTransferred {
		t.Error("tight byte budget moved more items than unlimited")
	}
	if rows[1].Setting != "bytes=inf" {
		t.Errorf("label = %q", rows[1].Setting)
	}
}

func TestAblationLifetime(t *testing.T) {
	tr := smallTrace(t)
	rows, err := AblationLifetime(tr, []int64{6 * 3600, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A bounded lifetime must not increase traffic, and the unlimited run
	// must deliver at least as much.
	if rows[0].ItemsTransferred > rows[1].ItemsTransferred {
		t.Errorf("bounded lifetime increased traffic: %d > %d",
			rows[0].ItemsTransferred, rows[1].ItemsTransferred)
	}
	if rows[1].Delivered12h < rows[0].Delivered12h-1e-9 {
		t.Errorf("unlimited lifetime delivered less: %v < %v",
			rows[1].Delivered12h, rows[0].Delivered12h)
	}
	if rows[1].Setting != "lifetime=inf" {
		t.Errorf("label = %q", rows[1].Setting)
	}
}

func TestFormatAblation(t *testing.T) {
	out := FormatAblation("title", []AblationRow{{
		Setting: "x=1", Delivered12h: 0.5, MeanDelayHours: 2.25,
		CopiesAtEnd: 3.5, ItemsTransferred: 42,
	}})
	for _, want := range []string{"title", "x=1", "50.0%", "2.2h", "3.50", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
