package experiment

import (
	"fmt"
	"strings"

	"replidtn/internal/emu"
	"replidtn/internal/item"
	"replidtn/internal/store"
	"replidtn/internal/trace"
)

// Ablations probe the design choices behind the paper's fixed Table II
// parameters and its FIFO eviction choice: how sensitive are the results to
// the epidemic TTL, the spray copy allowance, the MaxProp hop threshold, the
// per-encounter bandwidth budget, the relay storage capacity, and the relay
// eviction strategy?

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	// Setting describes the swept value (e.g. "ttl=4").
	Setting string
	// Delivered12h is the fraction of messages delivered within 12 hours.
	Delivered12h float64
	// MeanDelayHours is the mean delivery delay.
	MeanDelayHours float64
	// CopiesAtEnd is the mean stored copies per message at the end.
	CopiesAtEnd float64
	// ItemsTransferred is total sync traffic.
	ItemsTransferred int
}

func rowFrom(setting string, res *emu.Result) AblationRow {
	return AblationRow{
		Setting:          setting,
		Delivered12h:     res.Summary.DeliveredWithin(Deadline12h),
		MeanDelayHours:   res.Summary.MeanDelayHours(),
		CopiesAtEnd:      res.Summary.MeanCopiesAtEnd(),
		ItemsTransferred: res.ItemsTransferred,
	}
}

// FormatAblation renders ablation rows as an aligned table.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-18s%12s%14s%14s%12s\n", title,
		"setting", "12h deliv", "mean delay", "end copies", "traffic")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s%11.1f%%%13.1fh%14.2f%12d\n",
			r.Setting, r.Delivered12h*100, r.MeanDelayHours, r.CopiesAtEnd, r.ItemsTransferred)
	}
	return b.String()
}

// AblationEpidemicTTL sweeps the epidemic hop budget.
func AblationEpidemicTTL(tr *trace.Trace, ttls []int, opts ...Option) ([]AblationRow, error) {
	o := buildOptions(opts)
	if len(ttls) == 0 {
		ttls = []int{1, 2, 4, 10, 20}
	}
	rows := make([]AblationRow, 0, len(ttls))
	for _, ttl := range ttls {
		params := emu.DefaultParams()
		params.EpidemicTTL = float64(ttl)
		res, err := emu.Run(o.instrument(emu.Config{Trace: tr, Policy: emu.Factory(emu.PolicyEpidemic, params), Workers: o.workers, Faults: o.faults}))
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation ttl=%d: %w", ttl, err)
		}
		rows = append(rows, rowFrom(fmt.Sprintf("ttl=%d", ttl), res))
	}
	return rows, nil
}

// AblationSprayCopies sweeps the spray allowance.
func AblationSprayCopies(tr *trace.Trace, copies []int, opts ...Option) ([]AblationRow, error) {
	o := buildOptions(opts)
	if len(copies) == 0 {
		copies = []int{2, 4, 8, 16, 32}
	}
	rows := make([]AblationRow, 0, len(copies))
	for _, c := range copies {
		params := emu.DefaultParams()
		params.SprayCopies = c
		res, err := emu.Run(o.instrument(emu.Config{Trace: tr, Policy: emu.Factory(emu.PolicySpray, params), Workers: o.workers, Faults: o.faults}))
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation copies=%d: %w", c, err)
		}
		rows = append(rows, rowFrom(fmt.Sprintf("copies=%d", c), res))
	}
	return rows, nil
}

// AblationMaxPropThreshold sweeps the hop-count priority threshold under the
// bandwidth constraint, where transmission order is what distinguishes
// MaxProp from plain flooding.
func AblationMaxPropThreshold(tr *trace.Trace, thresholds []int, opts ...Option) ([]AblationRow, error) {
	o := buildOptions(opts)
	if len(thresholds) == 0 {
		thresholds = []int{1, 3, 5, 10}
	}
	rows := make([]AblationRow, 0, len(thresholds))
	for _, th := range thresholds {
		params := emu.DefaultParams()
		params.MaxPropHopThreshold = th
		res, err := emu.Run(o.instrument(emu.Config{
			Trace:                   tr,
			Policy:                  emu.Factory(emu.PolicyMaxProp, params),
			MaxMessagesPerEncounter: 1,
			Workers:                 o.workers,
			Faults:                  o.faults,
		}))
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation threshold=%d: %w", th, err)
		}
		rows = append(rows, rowFrom(fmt.Sprintf("threshold=%d", th), res))
	}
	return rows, nil
}

// AblationBandwidth sweeps the per-encounter message budget for epidemic
// routing (0 = unlimited), bridging the paper's two extremes (Fig. 7 vs.
// Fig. 9).
func AblationBandwidth(tr *trace.Trace, budgets []int, opts ...Option) ([]AblationRow, error) {
	o := buildOptions(opts)
	if len(budgets) == 0 {
		budgets = []int{1, 2, 4, 8, 0}
	}
	rows := make([]AblationRow, 0, len(budgets))
	for _, budget := range budgets {
		res, err := emu.Run(o.instrument(emu.Config{
			Trace:                   tr,
			Policy:                  emu.Factory(emu.PolicyEpidemic, emu.DefaultParams()),
			MaxMessagesPerEncounter: budget,
			Workers:                 o.workers,
			Faults:                  o.faults,
		}))
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation budget=%d: %w", budget, err)
		}
		setting := fmt.Sprintf("budget=%d", budget)
		if budget == 0 {
			setting = "budget=inf"
		}
		rows = append(rows, rowFrom(setting, res))
	}
	return rows, nil
}

// AblationStorage sweeps the relay capacity for epidemic routing (0 =
// unlimited), bridging Fig. 7 and Fig. 10.
func AblationStorage(tr *trace.Trace, caps []int, opts ...Option) ([]AblationRow, error) {
	o := buildOptions(opts)
	if len(caps) == 0 {
		caps = []int{1, 2, 4, 8, 0}
	}
	rows := make([]AblationRow, 0, len(caps))
	for _, capacity := range caps {
		res, err := emu.Run(o.instrument(emu.Config{
			Trace:         tr,
			Policy:        emu.Factory(emu.PolicyEpidemic, emu.DefaultParams()),
			RelayCapacity: capacity,
			Workers:       o.workers,
			Faults:        o.faults,
		}))
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation capacity=%d: %w", capacity, err)
		}
		setting := fmt.Sprintf("capacity=%d", capacity)
		if capacity == 0 {
			setting = "capacity=inf"
		}
		rows = append(rows, rowFrom(setting, res))
	}
	return rows, nil
}

// AblationByteBudget sweeps a byte-granular per-encounter bandwidth budget
// for epidemic routing with 1 KiB messages (0 = unlimited) — the
// finer-grained version of the paper's one-message constraint.
func AblationByteBudget(tr *trace.Trace, budgets []int64, opts ...Option) ([]AblationRow, error) {
	o := buildOptions(opts)
	if len(budgets) == 0 {
		budgets = []int64{2 << 10, 8 << 10, 32 << 10, 0}
	}
	const messageSize = 1 << 10
	rows := make([]AblationRow, 0, len(budgets))
	for _, budget := range budgets {
		res, err := emu.Run(o.instrument(emu.Config{
			Trace:                tr,
			Policy:               emu.Factory(emu.PolicyEpidemic, emu.DefaultParams()),
			MaxBytesPerEncounter: budget,
			MessageSize:          messageSize,
			Workers:              o.workers,
			Faults:               o.faults,
		}))
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation bytes=%d: %w", budget, err)
		}
		setting := fmt.Sprintf("bytes=%dKiB", budget>>10)
		if budget == 0 {
			setting = "bytes=inf"
		}
		rows = append(rows, rowFrom(setting, res))
	}
	return rows, nil
}

// AblationLifetime sweeps bounded message lifetimes for epidemic routing
// (0 = unlimited): expired messages stop consuming encounter bandwidth, at
// the price of undelivered deadline misses.
func AblationLifetime(tr *trace.Trace, lifetimes []int64, opts ...Option) ([]AblationRow, error) {
	o := buildOptions(opts)
	if len(lifetimes) == 0 {
		lifetimes = []int64{6 * 3600, 12 * 3600, 24 * 3600, 0}
	}
	rows := make([]AblationRow, 0, len(lifetimes))
	for _, lt := range lifetimes {
		res, err := emu.Run(o.instrument(emu.Config{
			Trace:           tr,
			Policy:          emu.Factory(emu.PolicyEpidemic, emu.DefaultParams()),
			MessageLifetime: lt,
			Workers:         o.workers,
			Faults:          o.faults,
		}))
		if err != nil {
			return nil, fmt.Errorf("experiment: ablation lifetime=%d: %w", lt, err)
		}
		setting := fmt.Sprintf("lifetime=%dh", lt/3600)
		if lt == 0 {
			setting = "lifetime=inf"
		}
		rows = append(rows, rowFrom(setting, res))
	}
	return rows, nil
}

// AblationEviction compares relay-eviction strategies under the Fig. 10
// storage constraint: the paper's FIFO versus MaxProp-style drop-highest-
// hop-count.
func AblationEviction(tr *trace.Trace, opts ...Option) ([]AblationRow, error) {
	o := buildOptions(opts)
	strategies := []store.EvictionStrategy{
		store.FIFO{},
		store.EvictByCost{Field: item.FieldHops},
	}
	var rows []AblationRow
	for _, name := range []emu.PolicyName{emu.PolicyEpidemic, emu.PolicyMaxProp} {
		for _, ev := range strategies {
			res, err := emu.Run(o.instrument(emu.Config{
				Trace:         tr,
				Policy:        emu.Factory(name, emu.DefaultParams()),
				RelayCapacity: 2,
				Eviction:      ev,
				Workers:       o.workers,
				Faults:        o.faults,
			}))
			if err != nil {
				return nil, fmt.Errorf("experiment: ablation eviction %s/%s: %w", name, ev.Name(), err)
			}
			rows = append(rows, rowFrom(fmt.Sprintf("%s/%s", name, ev.Name()), res))
		}
	}
	return rows, nil
}
