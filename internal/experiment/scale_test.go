package experiment

import (
	"strings"
	"testing"

	"replidtn/internal/emu"
)

// tinyScaleSpecs keeps the sweep test fast while still covering all three
// mobility models and both engines.
var tinyScaleSpecs = []string{
	"rwp:n=40,seed=7,users=10,msgs=30,active=3600",
	"community:n=40,seed=7,users=10,msgs=30,active=3600,cells=2,bias=0.8",
	"corridor:n=40,seed=7,users=10,msgs=30,active=3600,lanes=3",
}

func TestRunScaleSweep(t *testing.T) {
	rows, err := RunScaleSweep(tinyScaleSpecs, []int{0, 4}, emu.PolicySpray)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(tinyScaleSpecs)*2 {
		t.Fatalf("got %d rows, want %d", len(rows), len(tinyScaleSpecs)*2)
	}
	for i, r := range rows {
		spec := tinyScaleSpecs[i/2]
		if r.Scenario != spec {
			t.Errorf("row %d: scenario %q, want %q", i, r.Scenario, spec)
		}
		if r.Nodes != 40 {
			t.Errorf("row %d: %d nodes, want 40", i, r.Nodes)
		}
		if r.Encounters == 0 {
			t.Errorf("row %d: no encounters", i)
		}
		if wantWorkers := (i % 2) * 4; r.Workers != wantWorkers {
			t.Errorf("row %d: workers %d, want %d", i, r.Workers, wantWorkers)
		}
		if r.Wall <= 0 || r.EventsPerSec <= 0 {
			t.Errorf("row %d: non-positive timing (wall=%v events/s=%v)", i, r.Wall, r.EventsPerSec)
		}
	}
	// The deterministic columns must agree between the engines; shard
	// statistics must be reported only for the sharded engine.
	for i := 0; i < len(rows); i += 2 {
		seq, par := rows[i], rows[i+1]
		if seq.Delivered != par.Delivered {
			t.Errorf("%s: delivery differs between engines: %v vs %v",
				seq.Scenario, seq.Delivered, par.Delivered)
		}
		if seq.ShardsPerEpoch != 0 || seq.MergeMicrosPerEpoch != 0 {
			t.Errorf("%s: sequential row reports shard stats", seq.Scenario)
		}
		if par.ShardsPerEpoch < 1 {
			t.Errorf("%s: sharded row reports %v shards/epoch, want >= 1",
				par.Scenario, par.ShardsPerEpoch)
		}
	}
}

func TestRunScaleSweepBadSpec(t *testing.T) {
	if _, err := RunScaleSweep([]string{"warp:n=10"}, []int{0}, emu.PolicySpray); err == nil {
		t.Error("unknown scenario model should fail")
	}
}

func TestFormatScaleSweep(t *testing.T) {
	rows, err := RunScaleSweep(tinyScaleSpecs[:1], []int{0, 2}, emu.PolicySpray)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatScaleSweep(rows)
	for _, want := range []string{"scenario", "events/s", "shards/ep", tinyScaleSpecs[0]} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+len(rows) {
		t.Errorf("table has %d lines, want %d:\n%s", len(lines), 1+len(rows), out)
	}
}
