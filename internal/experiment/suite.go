package experiment

import (
	"fmt"
	"io"

	"replidtn/internal/emu"
	"replidtn/internal/fault"
	"replidtn/internal/metrics"
	"replidtn/internal/obs"
	"replidtn/internal/trace"
)

// SmallTrace generates a scaled-down paper trace (5 days, 12-bus fleet, 60
// messages) that preserves the full trace's structure. Tests and benchmarks
// use it to keep the evaluation loop fast; the CLI uses the full trace.
func SmallTrace(seed int64) (*trace.Trace, error) {
	dn := trace.DefaultDieselNet()
	dn.Days = 5
	dn.FleetSize = 12
	dn.ActivePerDay = 10
	dn.Routes = 4
	dn.EncountersPerDay = 220
	dn.Seed = seed
	wl := trace.DefaultWorkload()
	wl.Users = 20
	wl.Messages = 60
	wl.InjectDays = 2
	wl.Seed = seed + 1
	return trace.Generate(dn, wl, seed+2)
}

// Suite runs the full evaluation and writes every table and figure to w.
type Suite struct {
	Trace  *trace.Trace
	Params emu.Params
	// Workers, when >= 1, routes every emulation run through the parallel
	// engine with that many workers; 0 keeps the sequential engine. Output is
	// bit-identical either way.
	Workers int
	// Faults, when enabled, injects deterministic encounter faults into every
	// emulation run; the zero value reproduces the fault-free evaluation.
	Faults fault.Config
	// Obs, when set, aggregates replica and store observability counters
	// across every emulation run in the suite (see WithObs). Nil keeps
	// instrumentation off; results are identical either way.
	Obs *obs.NodeMetrics
	// Summaries enables the compact knowledge summary sync protocol on every
	// run (see WithSyncSummaries). Delivery results are identical either way;
	// the sync-overhead table shrinks.
	Summaries bool
}

// NewSuite builds a suite over the paper-calibrated default trace and
// parameters.
func NewSuite() (*Suite, error) {
	tr, err := trace.Default()
	if err != nil {
		return nil, err
	}
	return &Suite{Trace: tr, Params: emu.DefaultParams()}, nil
}

// RunAll executes every experiment and renders the paper's tables and
// figures to w.
func (s *Suite) RunAll(w io.Writer) error {
	fmt.Fprintf(w, "== Table I: DTN routing policies ==\n%s\n", FormatTable1(Table1()))
	fmt.Fprintf(w, "== Table II: protocol parameters ==\n%s\n", FormatTable2(s.Params))

	fs, err := RunFilterSweep(s.Trace, nil, WithWorkers(s.Workers), WithFaults(s.Faults), WithObs(s.Obs), WithSyncSummaries(s.Summaries))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Fig. 5: average message delay (hours) vs addresses in filter ==\n%s\n",
		metrics.FormatTable("k", fs.Fig5()))
	fmt.Fprintf(w, "== Fig. 6: %% delivered within 12 hours vs addresses in filter ==\n%s\n",
		metrics.FormatTable("k", fs.Fig6()))
	fmt.Fprintf(w, "== Sync overhead: knowledge bytes per encounter vs addresses in filter ==\n%s\n",
		metrics.FormatTable("k", fs.KnowledgePerEncounter()))

	unconstrained, err := RunPolicySweep(s.Trace, s.Params, 0, 0, WithWorkers(s.Workers), WithFaults(s.Faults), WithObs(s.Obs), WithSyncSummaries(s.Summaries))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Fig. 7(a): delay CDF, first 12 hours (%% delivered) ==\n%s\n",
		metrics.FormatTable("hours", unconstrained.CDFHours(12)))
	fmt.Fprintf(w, "== Fig. 7(b): delay CDF, 1-10 days (%% delivered) ==\n%s\n",
		metrics.FormatTable("days", unconstrained.CDFDays(10)))
	fmt.Fprintf(w, "== Fig. 8: average stored copies per message ==\n%s\n",
		FormatFig8(unconstrained.Fig8()))

	bandwidth, err := RunPolicySweep(s.Trace, s.Params, 1, 0, WithWorkers(s.Workers), WithFaults(s.Faults), WithObs(s.Obs), WithSyncSummaries(s.Summaries))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Fig. 9: delay CDF under bandwidth constraint (1 msg/encounter) ==\n%s\n",
		metrics.FormatTable("hours", bandwidth.CDFHours(12)))

	storage, err := RunPolicySweep(s.Trace, s.Params, 0, 2, WithWorkers(s.Workers), WithFaults(s.Faults), WithObs(s.Obs), WithSyncSummaries(s.Summaries))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Fig. 10: delay CDF under storage constraint (2 relayed msgs/node) ==\n%s\n",
		metrics.FormatTable("hours", storage.CDFHours(12)))
	return nil
}
