package experiment

import (
	"fmt"
	"strings"

	"replidtn/internal/emu"
)

// Table1Row summarizes one routing policy qualitatively — the paper's
// Table I.
type Table1Row struct {
	Protocol     string
	RoutingState string
	SyncRequest  string
	Forwarding   string
}

// Table1 returns the paper's Table I.
func Table1() []Table1Row {
	return []Table1Row{
		{
			Protocol:     "Epidemic",
			RoutingState: "TTL per message (transient)",
			SyncRequest:  "—",
			Forwarding:   "when TTL > 0",
		},
		{
			Protocol:     "Spray&Wait",
			RoutingState: "# copies per message (transient)",
			SyncRequest:  "—",
			Forwarding:   "when # copies >= 2",
		},
		{
			Protocol:     "PROPHET",
			RoutingState: "vector of delivery predictabilities P[d]",
			SyncRequest:  "target's P vector",
			Forwarding:   "messages to d when target's P[d] > source's",
		},
		{
			Protocol:     "MaxProp",
			RoutingState: "estimated meeting probabilities for all pairs",
			SyncRequest:  "target's meeting probabilities",
			Forwarding:   "all messages, ordered by priority (modified Dijkstra)",
		},
	}
}

// FormatTable1 renders Table I.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s%-47s%-34s%s\n", "protocol", "routing state", "added to sync request", "source forwarding policy")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s%-47s%-34s%s\n", r.Protocol, r.RoutingState, r.SyncRequest, r.Forwarding)
	}
	return b.String()
}

// FormatTable2 renders the paper's Table II (protocol parameters) from the
// live parameter set.
func FormatTable2(p emu.Params) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Epidemic     TTL = %d\n", int(p.EpidemicTTL))
	fmt.Fprintf(&b, "Spray&Wait   copies per message = %d\n", p.SprayCopies)
	fmt.Fprintf(&b, "PROPHET      P_init = %g, beta = %g, gamma = %g (aging unit %ds)\n",
		p.Prophet.PInit, p.Prophet.Beta, p.Prophet.Gamma, p.Prophet.AgingUnit)
	fmt.Fprintf(&b, "MaxProp      hopcount priority threshold = %d\n", p.MaxPropHopThreshold)
	return b.String()
}
