package experiment

import (
	"testing"

	"replidtn/internal/emu"
)

// TestEpidemicEqualsMaxPropUnconstrained pins the paper's observation that
// "Epidemic and MaxProp have identical delay distributions for this
// experiment because they differ in the messages forwarded only when the
// network bandwidth is constrained": without constraints, the two policies
// must produce byte-identical delivery records.
func TestEpidemicEqualsMaxPropUnconstrained(t *testing.T) {
	tr := smallTrace(t)
	ps, err := RunPolicySweep(tr, emu.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	epi := ps.Results[emu.PolicyEpidemic].Summary.Deliveries()
	mp := ps.Results[emu.PolicyMaxProp].Summary.Deliveries()
	if len(epi) != len(mp) {
		t.Fatalf("delivery counts differ: %d vs %d", len(epi), len(mp))
	}
	for i := range epi {
		if epi[i] != mp[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, epi[i], mp[i])
		}
	}
	// Under a tight bandwidth constraint they are allowed to (and typically
	// do) diverge — that is where MaxProp's ordering matters.
	bw, err := RunPolicySweep(tr, emu.DefaultParams(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bw.Results[emu.PolicyEpidemic].ItemsTransferred == 0 {
		t.Error("constrained epidemic moved nothing")
	}
}

// TestKnowledgeStaysCompact pins the substrate's compact-metadata claim: the
// average knowledge size per replica stays proportional to the fleet size,
// not the message count, for every policy.
func TestKnowledgeStaysCompact(t *testing.T) {
	tr := smallTrace(t)
	ps, err := RunPolicySweep(tr, emu.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fleet := float64(len(tr.Buses))
	msgs := float64(len(tr.Messages))
	for name, res := range ps.Results {
		if res.MeanKnowledgeEntries > 4*fleet {
			t.Errorf("%s: knowledge averages %.0f entries for a %d-bus fleet",
				name, res.MeanKnowledgeEntries, len(tr.Buses))
		}
		if res.MeanKnowledgeEntries >= msgs {
			t.Errorf("%s: knowledge (%.0f) grew to message scale (%d)",
				name, res.MeanKnowledgeEntries, len(tr.Messages))
		}
	}
}
