package experiment

// Option adjusts how experiment drivers execute their emulation runs without
// changing what they compute: every driver accepts a trailing ...Option and
// produces results independent of the options chosen.
type Option func(*options)

type options struct {
	workers int
}

// WithWorkers routes every emulation run in the driver through the parallel
// engine with n workers (n >= 1). n = 0 (the default) keeps the sequential
// reference engine. Results are bit-identical either way; only wall-clock
// changes.
func WithWorkers(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.workers = n
		}
	}
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
