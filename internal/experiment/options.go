package experiment

import (
	"replidtn/internal/emu"
	"replidtn/internal/fault"
	"replidtn/internal/obs"
)

// Option adjusts how experiment drivers execute their emulation runs. Most
// options (WithWorkers) leave results bit-identical; WithFaults deliberately
// perturbs the emulated network and therefore the results, but keeps them a
// deterministic function of the fault config.
type Option func(*options)

type options struct {
	workers   int
	faults    fault.Config
	obs       *obs.NodeMetrics
	summaries bool
}

// WithWorkers routes every emulation run in the driver through the parallel
// engine with n workers (n >= 1). n = 0 (the default) keeps the sequential
// reference engine. Results are bit-identical either way; only wall-clock
// changes.
func WithWorkers(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.workers = n
		}
	}
}

// WithFaults injects deterministic encounter faults (dropped contacts,
// mid-sync cutoffs, crash-restarts) into every emulation run in the driver.
// The zero config is a no-op.
func WithFaults(cfg fault.Config) Option {
	return func(o *options) {
		o.faults = cfg
	}
}

// WithObs aggregates replica and store observability counters from every
// node of every emulation run in the driver into n's Replica and Store
// sections (see emu.Config.Metrics). Counter updates are atomic, so
// instrumented runs stay bit-identical in their results; nil is a no-op,
// leaving instrumentation off.
func WithObs(n *obs.NodeMetrics) Option {
	return func(o *options) {
		o.obs = n
	}
}

// WithSyncSummaries(true) enables the compact knowledge summary protocol
// (Bloom digests and delta knowledge) on every node of every emulation run in
// the driver. Delivery results are bit-identical with or without it —
// summaries only shrink the knowledge-frame traffic that the sweeps'
// bytes/enc columns report.
func WithSyncSummaries(on bool) Option {
	return func(o *options) {
		o.summaries = on
	}
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// instrument attaches the driver's observability sinks, if any, to one run
// config. Every emu.Run call in this package goes through it.
func (o options) instrument(cfg emu.Config) emu.Config {
	if o.obs != nil {
		cfg.Metrics = &o.obs.Replica
		cfg.StoreMetrics = &o.obs.Store
	}
	if o.summaries {
		cfg.SyncSummaries = true
	}
	return cfg
}
