package experiment

import "replidtn/internal/fault"

// Option adjusts how experiment drivers execute their emulation runs. Most
// options (WithWorkers) leave results bit-identical; WithFaults deliberately
// perturbs the emulated network and therefore the results, but keeps them a
// deterministic function of the fault config.
type Option func(*options)

type options struct {
	workers int
	faults  fault.Config
}

// WithWorkers routes every emulation run in the driver through the parallel
// engine with n workers (n >= 1). n = 0 (the default) keeps the sequential
// reference engine. Results are bit-identical either way; only wall-clock
// changes.
func WithWorkers(n int) Option {
	return func(o *options) {
		if n > 0 {
			o.workers = n
		}
	}
}

// WithFaults injects deterministic encounter faults (dropped contacts,
// mid-sync cutoffs, crash-restarts) into every emulation run in the driver.
// The zero config is a no-op.
func WithFaults(cfg fault.Config) Option {
	return func(o *options) {
		o.faults = cfg
	}
}

func buildOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return o
}
