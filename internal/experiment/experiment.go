// Package experiment reproduces the paper's evaluation (§VI): every figure
// and table has a driver that runs the corresponding emulations and renders
// the same rows or series the paper plots.
//
// The experiment index is:
//
//	Table I  — qualitative summary of the four routing policies
//	Table II — protocol parameters
//	Fig. 5   — mean delivery delay vs. filter size (random / selected)
//	Fig. 6   — % delivered within 12 h vs. filter size
//	Fig. 7   — delay CDFs per policy (a: 0–12 h, b: 1–10 days)
//	Fig. 8   — stored copies per message (at delivery / at end)
//	Fig. 9   — delay CDFs under a bandwidth constraint (1 msg/encounter)
//	Fig. 10  — delay CDFs under a storage constraint (2 relayed msgs/node)
package experiment

import (
	"fmt"
	"strings"
	"sync"

	"replidtn/internal/emu"
	"replidtn/internal/metrics"
	"replidtn/internal/trace"
)

// FilterKs are the filter sizes swept in Figs. 5 and 6 (k = 0 is the basic
// substrate, labeled "Self" in the paper).
var FilterKs = []int{0, 1, 2, 4, 8, 16}

// Deadline12h is the bounded-lifetime deadline used throughout (§VI.B picks
// 12 hours because buses return to the shed about 12 hours after injection).
const Deadline12h = 12 * 3600

// FilterSweep holds the Fig. 5/6 emulation results: one run per strategy and
// filter size.
type FilterSweep struct {
	Ks       []int
	Random   map[int]*emu.Result
	Selected map[int]*emu.Result
}

// RunFilterSweep executes the multi-address filter experiments on the basic
// substrate. The per-(strategy, k) runs are independent and deterministic, so
// they execute concurrently; the k = 0 run is shared between the strategies.
func RunFilterSweep(tr *trace.Trace, ks []int, opts ...Option) (*FilterSweep, error) {
	o := buildOptions(opts)
	if len(ks) == 0 {
		ks = FilterKs
	}
	fs := &FilterSweep{
		Ks:       ks,
		Random:   make(map[int]*emu.Result, len(ks)),
		Selected: make(map[int]*emu.Result, len(ks)),
	}
	type job struct {
		strategy string
		k        int
	}
	jobs := make([]job, 0, 2*len(ks))
	for _, k := range ks {
		jobs = append(jobs, job{"random", k})
		if k != 0 {
			jobs = append(jobs, job{"selected", k})
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			extra := emu.SelectedExtraBuses(tr, j.k)
			if j.strategy == "random" {
				extra = emu.RandomExtraBuses(tr, j.k, 11)
			}
			res, err := emu.Run(o.instrument(emu.Config{
				Trace:      tr,
				ExtraBuses: extra,
				Workers:    o.workers,
				Faults:     o.faults,
			}))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("experiment: filters %s k=%d: %w", j.strategy, j.k, err)
				}
				return
			}
			if j.strategy == "random" {
				fs.Random[j.k] = res
			} else {
				fs.Selected[j.k] = res
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if res, ok := fs.Random[0]; ok {
		fs.Selected[0] = res
	}
	return fs, nil
}

// Fig5 returns the mean message delay (hours) for each strategy and filter
// size.
func (fs *FilterSweep) Fig5() []metrics.Series {
	xs := make([]float64, len(fs.Ks))
	random := make([]float64, len(fs.Ks))
	selected := make([]float64, len(fs.Ks))
	for i, k := range fs.Ks {
		xs[i] = float64(k)
		random[i] = fs.Random[k].Summary.MeanDelayHours()
		selected[i] = fs.Selected[k].Summary.MeanDelayHours()
	}
	return []metrics.Series{
		{Label: "random", X: xs, Y: random},
		{Label: "selected", X: xs, Y: selected},
	}
}

// Fig6 returns the percentage of messages delivered within 12 hours for each
// strategy and filter size.
func (fs *FilterSweep) Fig6() []metrics.Series {
	xs := make([]float64, len(fs.Ks))
	random := make([]float64, len(fs.Ks))
	selected := make([]float64, len(fs.Ks))
	for i, k := range fs.Ks {
		xs[i] = float64(k)
		random[i] = fs.Random[k].Summary.DeliveredWithin(Deadline12h) * 100
		selected[i] = fs.Selected[k].Summary.DeliveredWithin(Deadline12h) * 100
	}
	return []metrics.Series{
		{Label: "random", X: xs, Y: random},
		{Label: "selected", X: xs, Y: selected},
	}
}

// KnowledgePerEncounter returns the mean knowledge-frame bytes shipped per
// encounter for each strategy and filter size — the sync-metadata overhead
// the compact summary protocol (WithSyncSummaries) shrinks. Comparing this
// series between a plain and a summaries-enabled sweep is the filter-sweep
// bytes-per-encounter ablation.
func (fs *FilterSweep) KnowledgePerEncounter() []metrics.Series {
	xs := make([]float64, len(fs.Ks))
	random := make([]float64, len(fs.Ks))
	selected := make([]float64, len(fs.Ks))
	for i, k := range fs.Ks {
		xs[i] = float64(k)
		random[i] = knowledgePerEncounter(fs.Random[k])
		selected[i] = knowledgePerEncounter(fs.Selected[k])
	}
	return []metrics.Series{
		{Label: "random", X: xs, Y: random},
		{Label: "selected", X: xs, Y: selected},
	}
}

// PolicySweep holds one emulation result per routing configuration under a
// common constraint setting.
type PolicySweep struct {
	// MaxMessagesPerEncounter and RelayCapacity echo the constraints used.
	MaxMessagesPerEncounter int
	RelayCapacity           int
	Results                 map[emu.PolicyName]*emu.Result
}

// RunPolicySweep executes one emulation per routing configuration. The runs
// are independent and deterministic, so they execute concurrently.
func RunPolicySweep(tr *trace.Trace, params emu.Params, maxPerEncounter, relayCapacity int, opts ...Option) (*PolicySweep, error) {
	o := buildOptions(opts)
	ps := &PolicySweep{
		MaxMessagesPerEncounter: maxPerEncounter,
		RelayCapacity:           relayCapacity,
		Results:                 make(map[emu.PolicyName]*emu.Result, len(emu.AllPolicies)),
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, name := range emu.AllPolicies {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := emu.Run(o.instrument(emu.Config{
				Trace:                   tr,
				Policy:                  emu.Factory(name, params),
				MaxMessagesPerEncounter: maxPerEncounter,
				RelayCapacity:           relayCapacity,
				Workers:                 o.workers,
				Faults:                  o.faults,
			}))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("experiment: policy %s: %w", name, err)
				}
				return
			}
			ps.Results[name] = res
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return ps, nil
}

// CDFHours returns per-policy delay CDFs over hourly bounds 1..hours — the
// Fig. 7(a), Fig. 9, and Fig. 10 series.
func (ps *PolicySweep) CDFHours(hours int) []metrics.Series {
	bounds := metrics.HourBounds(hours)
	xs := make([]float64, len(bounds))
	for i, b := range bounds {
		xs[i] = float64(b) / 3600
	}
	out := make([]metrics.Series, 0, len(emu.AllPolicies))
	for _, name := range emu.AllPolicies {
		out = append(out, metrics.Series{
			Label: string(name),
			X:     xs,
			Y:     ps.Results[name].Summary.CDF(bounds),
		})
	}
	return out
}

// CDFDays returns per-policy delay CDFs over daily bounds 1..days — the
// Fig. 7(b) series.
func (ps *PolicySweep) CDFDays(days int) []metrics.Series {
	bounds := metrics.DayBounds(days)
	xs := make([]float64, len(bounds))
	for i, b := range bounds {
		xs[i] = float64(b) / (24 * 3600)
	}
	out := make([]metrics.Series, 0, len(emu.AllPolicies))
	for _, name := range emu.AllPolicies {
		out = append(out, metrics.Series{
			Label: string(name),
			X:     xs,
			Y:     ps.Results[name].Summary.CDF(bounds),
		})
	}
	return out
}

// Fig8Row is one policy's stored-copy accounting.
type Fig8Row struct {
	Policy           emu.PolicyName
	CopiesAtDelivery float64
	CopiesAtEnd      float64
}

// Fig8 returns the average stored copies per message for every policy.
func (ps *PolicySweep) Fig8() []Fig8Row {
	out := make([]Fig8Row, 0, len(emu.AllPolicies))
	for _, name := range emu.AllPolicies {
		s := ps.Results[name].Summary
		out = append(out, Fig8Row{
			Policy:           name,
			CopiesAtDelivery: s.MeanCopiesAtDelivery(),
			CopiesAtEnd:      s.MeanCopiesAtEnd(),
		})
	}
	return out
}

// FormatFig8 renders the Fig. 8 rows.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s%22s%18s\n", "policy", "copies at delivery", "copies at end")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s%22.2f%18.2f\n", r.Policy, r.CopiesAtDelivery, r.CopiesAtEnd)
	}
	return b.String()
}
