package experiment

import (
	"fmt"
	"strings"

	"replidtn/internal/emu"
)

// SummaryRow condenses one policy's full outcome: the cross-figure overview
// behind the paper's §VI discussion.
type SummaryRow struct {
	Policy            emu.PolicyName
	Delivered         int
	Total             int
	Within12h         float64
	MeanDelayHours    float64
	MedianDelayHours  float64
	P90DelayHours     float64
	MaxDelayHours     float64
	CopiesAtEnd       float64
	ItemsTransferred  int
	KnowledgeEntries  float64
	DuplicateReceipts int
}

// SummaryRows condenses a policy sweep.
func (ps *PolicySweep) SummaryRows() []SummaryRow {
	out := make([]SummaryRow, 0, len(emu.AllPolicies))
	for _, name := range emu.AllPolicies {
		res := ps.Results[name]
		s := res.Summary
		out = append(out, SummaryRow{
			Policy:            name,
			Delivered:         s.DeliveredCount(),
			Total:             s.Total(),
			Within12h:         s.DeliveredWithin(Deadline12h),
			MeanDelayHours:    s.MeanDelayHours(),
			MedianDelayHours:  s.MedianDelayHours(),
			P90DelayHours:     s.PercentileDelayHours(90),
			MaxDelayHours:     s.MaxDelayHours(),
			CopiesAtEnd:       s.MeanCopiesAtEnd(),
			ItemsTransferred:  res.ItemsTransferred,
			KnowledgeEntries:  res.MeanKnowledgeEntries,
			DuplicateReceipts: res.Duplicates,
		})
	}
	return out
}

// FormatSummary renders the overview table.
func FormatSummary(rows []SummaryRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s%10s%8s%8s%8s%8s%8s%8s%9s%7s%5s\n",
		"policy", "delivered", "12h%", "mean", "median", "p90", "max", "copies", "traffic", "know", "dup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s%5d/%-4d%7.1f%%%7.1fh%7.1fh%7.1fh%7.1fh%8.1f%9d%7.0f%5d\n",
			r.Policy, r.Delivered, r.Total, r.Within12h*100,
			r.MeanDelayHours, r.MedianDelayHours, r.P90DelayHours, r.MaxDelayHours,
			r.CopiesAtEnd, r.ItemsTransferred, r.KnowledgeEntries, r.DuplicateReceipts)
	}
	return b.String()
}
