package experiment

import (
	"fmt"
	"strings"
	"time"

	"replidtn/internal/emu"
	"replidtn/internal/mobility"
	"replidtn/internal/obs"
	"replidtn/internal/trace"
)

// The scale sweep answers a question the paper's 40-bus fleet cannot: how
// does the emulation engine absorb schedule volume as the fleet grows by
// orders of magnitude? Each row materializes a seeded mobility scenario,
// runs it through the engine at a given worker count, and reports
// throughput plus the sharded scheduler's partition statistics. Wall-clock
// appears only in the reported rates, never in emulation results — the
// engines stay bit-identical at every size.

// DefaultScaleSpecs is the scenario ladder swept by `dtnsim -experiment
// scale-sweep`: random-waypoint fleets from 1k to 100k nodes with a
// constant per-node contact rate (area auto-scales with the fleet), the
// active window shrinking with size to keep total schedule volume — and
// sweep wall time — tractable.
var DefaultScaleSpecs = []string{
	"rwp:n=1000,seed=11,users=100,msgs=200,active=3600",
	"rwp:n=10000,seed=11,users=100,msgs=200,active=1800",
	"rwp:n=100000,seed=11,users=100,msgs=200,active=900",
}

// SmallScaleSpecs is the fast ladder used with -small: the three mobility
// models at a few hundred nodes each, so the sweep doubles as a smoke test
// of every generator.
var SmallScaleSpecs = []string{
	"rwp:n=200,seed=11,users=40,msgs=80,active=3600",
	"community:n=200,seed=11,users=40,msgs=80,active=3600,cells=3,bias=0.7",
	"corridor:n=200,seed=11,users=40,msgs=80,active=3600,lanes=4",
}

// ScaleRow is one (scenario, worker count) measurement in the sweep.
type ScaleRow struct {
	// Scenario is the spec the row ran (see mobility.Parse).
	Scenario string
	// Nodes, Encounters, and Messages describe the materialized trace.
	Nodes      int
	Encounters int
	Messages   int
	// Workers is the engine configuration: 0 is the sequential reference
	// engine, >= 1 the region-sharded engine with that many workers.
	Workers int
	// Delivered is the fraction of messages delivered by the end of the run.
	Delivered float64
	// Wall is the wall-clock time of the emulation run (excluding scenario
	// materialization).
	Wall time.Duration
	// EventsPerSec is schedule throughput: (encounters + messages) / Wall.
	EventsPerSec float64
	// ShardsPerEpoch is the mean number of region shards the partition
	// exposed per epoch (0 for the sequential engine): the concurrency the
	// sharded scheduler actually found in the contact structure.
	ShardsPerEpoch float64
	// MergeMicrosPerEpoch is the mean wall time of the sequential merge
	// phase per epoch (0 for the sequential engine) — the serial residue
	// the sharding exists to minimize.
	MergeMicrosPerEpoch float64
}

// RunScaleSweep materializes each scenario spec once and runs it at each
// worker count, in order. Runs execute sequentially — unlike the other
// sweeps in this package — because the rows measure wall-clock throughput
// and concurrent runs would contend for the same cores. Emulation results
// are deterministic per (spec, policy); only the timing columns vary
// between invocations.
func RunScaleSweep(specs []string, workerCounts []int, policy emu.PolicyName, opts ...Option) ([]ScaleRow, error) {
	o := buildOptions(opts)
	params := emu.DefaultParams()
	var rows []ScaleRow
	for _, spec := range specs {
		sc, err := mobility.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("scale sweep: %w", err)
		}
		tr, err := trace.Materialize(sc)
		if err != nil {
			return nil, fmt.Errorf("scale sweep %q: %w", spec, err)
		}
		for _, workers := range workerCounts {
			var em *obs.EngineMetrics
			if workers >= 1 {
				em = &obs.EngineMetrics{}
			}
			cfg := o.instrument(emu.Config{
				Trace:   tr,
				Policy:  emu.Factory(policy, params),
				Workers: workers,
				Faults:  o.faults,
				Engine:  em,
			})
			start := time.Now()
			res, err := emu.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("scale sweep %q workers=%d: %w", spec, workers, err)
			}
			wall := time.Since(start)
			row := ScaleRow{
				Scenario:   spec,
				Nodes:      len(tr.Buses),
				Encounters: len(tr.Encounters),
				Messages:   len(tr.Messages),
				Workers:    workers,
				Delivered:  res.Summary.DeliveryRate(),
				Wall:       wall,
			}
			if secs := wall.Seconds(); secs > 0 {
				row.EventsPerSec = float64(len(tr.Encounters)+len(tr.Messages)) / secs
			}
			if em != nil {
				if s := em.Snapshot(); s.Epochs > 0 {
					row.ShardsPerEpoch = float64(s.Shards) / float64(s.Epochs)
					row.MergeMicrosPerEpoch = float64(s.MergeMicros.Sum) / float64(s.Epochs)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatScaleSweep renders sweep rows as an aligned table.
func FormatScaleSweep(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-52s %8s %10s %8s %6s %9s %10s %11s %9s\n",
		"scenario", "nodes", "encounters", "workers", "deliv", "wall", "events/s", "shards/ep", "merge-us")
	for _, r := range rows {
		shards, merge := "-", "-"
		if r.Workers >= 1 {
			shards = fmt.Sprintf("%.1f", r.ShardsPerEpoch)
			merge = fmt.Sprintf("%.0f", r.MergeMicrosPerEpoch)
		}
		fmt.Fprintf(&b, "%-52s %8d %10d %8d %5.1f%% %9s %10.0f %11s %9s\n",
			r.Scenario, r.Nodes, r.Encounters, r.Workers, 100*r.Delivered,
			r.Wall.Round(time.Millisecond), r.EventsPerSec, shards, merge)
	}
	return b.String()
}
