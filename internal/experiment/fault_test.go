package experiment

import (
	"strings"
	"testing"

	"replidtn/internal/emu"
	"replidtn/internal/fault"
)

// TestAcceptanceEpidemicSurvivesDrops is the PR's headline acceptance
// criterion: with 30% of encounters dropped under a fixed fault seed,
// epidemic routing still delivers every message eventually on the small
// trace, with zero duplicate deliveries — and repeated runs are byte-
// identical.
func TestAcceptanceEpidemicSurvivesDrops(t *testing.T) {
	tr, err := SmallTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (*emu.Result, string) {
		var log strings.Builder
		res, err := emu.Run(emu.Config{
			Trace:    tr,
			Policy:   emu.Factory(emu.PolicyEpidemic, emu.DefaultParams()),
			Faults:   fault.Config{Seed: 1, Drop: 0.3},
			Workers:  workers,
			EventLog: &log,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, log.String()
	}
	res, log := run(0)
	if res.EncountersDropped == 0 {
		t.Fatal("drop=0.3 dropped no encounters — faults not active")
	}
	if got, want := res.Summary.DeliveredCount(), res.Summary.Total(); got != want {
		t.Errorf("delivered %d of %d messages under drop=0.3", got, want)
	}
	if res.Duplicates != 0 {
		t.Errorf("at-most-once violated under faults: %d duplicates", res.Duplicates)
	}
	// Determinism: the same seed reproduces the run bit for bit, on both
	// engines.
	for _, workers := range []int{0, 4} {
		res2, log2 := run(workers)
		if res.Summary.DeliveredCount() != res2.Summary.DeliveredCount() ||
			res.EncountersDropped != res2.EncountersDropped ||
			res.ItemsTransferred != res2.ItemsTransferred ||
			res.BytesTransferred != res2.BytesTransferred {
			t.Errorf("workers=%d: faulted rerun diverged", workers)
		}
		if log != log2 {
			t.Errorf("workers=%d: faulted rerun produced a different event log", workers)
		}
	}
}

// TestRunFaultSweep exercises the sweep driver end to end on a reduced grid
// and checks its structural guarantees: the zero-fault row reproduces the
// fault-free baseline, faulted rows actually fault, and the sweep is
// deterministic.
func TestRunFaultSweep(t *testing.T) {
	tr, err := SmallTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	drops := []float64{0, 0.3}
	cutoffs := []int{2}
	rows, err := RunFaultSweep(tr, 1, drops, cutoffs, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := len(emu.AllPolicies) * (len(drops) + len(cutoffs)); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Delivered < 0 || r.Delivered > 1 {
			t.Errorf("%s %s: delivered fraction %f out of range", r.Policy, r.Setting, r.Delivered)
		}
		switch {
		case r.Setting == "drop=0.00":
			if r.EncountersDropped != 0 || r.SyncsAborted != 0 {
				t.Errorf("%s: zero-fault row recorded faults: %+v", r.Policy, r)
			}
		case strings.HasPrefix(r.Setting, "drop="):
			if r.EncountersDropped == 0 {
				t.Errorf("%s %s: no encounters dropped", r.Policy, r.Setting)
			}
		case strings.HasPrefix(r.Setting, "cutoff"):
			if r.SyncsAborted == 0 {
				t.Errorf("%s %s: no syncs aborted", r.Policy, r.Setting)
			}
		}
	}
	again, err := RunFaultSweep(tr, 1, drops, cutoffs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != again[i] {
			t.Errorf("sweep row %d not deterministic:\n%+v\n%+v", i, rows[i], again[i])
		}
	}
	out := FormatFaultSweep(rows)
	if !strings.Contains(out, "drop=0.30") || !strings.Contains(out, "cutoff<=2") {
		t.Errorf("formatted sweep missing settings:\n%s", out)
	}
	if !strings.Contains(out, "know B/enc") {
		t.Errorf("formatted sweep missing knowledge bytes-per-encounter column:\n%s", out)
	}
}

// TestSweepSummariesAblation is the bytes-per-encounter ablation: rerunning
// the fault sweep and the filter sweep with the compact summary protocol
// enabled must leave every delivery number untouched while shrinking the
// knowledge bytes shipped per encounter.
func TestSweepSummariesAblation(t *testing.T) {
	tr, err := SmallTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	drops := []float64{0, 0.3}
	cutoffs := []int{2}
	plain, err := RunFaultSweep(tr, 1, drops, cutoffs, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunFaultSweep(tr, 1, drops, cutoffs, WithWorkers(2), WithSyncSummaries(true))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		p, s := plain[i], sum[i]
		p.KnowledgeBytesPerEnc, s.KnowledgeBytesPerEnc = 0, 0
		if p != s {
			t.Errorf("row %d: summaries changed delivery results:\nplain     %+v\nsummaries %+v", i, p, s)
		}
		if sum[i].KnowledgeBytesPerEnc >= plain[i].KnowledgeBytesPerEnc {
			t.Errorf("%s %s: summaries did not shrink knowledge traffic: %.1f >= %.1f B/enc",
				plain[i].Policy, plain[i].Setting, sum[i].KnowledgeBytesPerEnc, plain[i].KnowledgeBytesPerEnc)
		}
	}

	ks := []int{0, 2}
	fsPlain, err := RunFilterSweep(tr, ks, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	fsSum, err := RunFilterSweep(tr, ks, WithWorkers(2), WithSyncSummaries(true))
	if err != nil {
		t.Fatal(err)
	}
	kp, ksum := fsPlain.KnowledgePerEncounter(), fsSum.KnowledgePerEncounter()
	for si := range kp {
		for i := range kp[si].Y {
			if ksum[si].Y[i] >= kp[si].Y[i] {
				t.Errorf("filter sweep %s k=%v: summaries did not shrink knowledge traffic: %.1f >= %.1f B/enc",
					kp[si].Label, kp[si].X[i], ksum[si].Y[i], kp[si].Y[i])
			}
		}
	}
	for _, k := range ks {
		if fsPlain.Random[k].Summary.DeliveredCount() != fsSum.Random[k].Summary.DeliveredCount() {
			t.Errorf("filter sweep k=%d: summaries changed delivered count", k)
		}
	}
}
