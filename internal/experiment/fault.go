package experiment

import (
	"fmt"
	"strings"
	"sync"

	"replidtn/internal/emu"
	"replidtn/internal/fault"
	"replidtn/internal/trace"
)

// The fault sweep quantifies what the paper assumes qualitatively: DTN
// routing must tolerate disrupted contacts. Each row reruns a policy with a
// deterministic dose of dropped encounters or mid-sync cutoffs and reports
// how delivery rate and delay degrade.

// DefaultFaultDrops are the encounter drop probabilities swept.
var DefaultFaultDrops = []float64{0, 0.1, 0.3, 0.5}

// DefaultFaultCutoffs are the mid-sync cutoff item budgets swept (each with
// cutoff probability 0.3 — probabilistic, so repeated encounters eventually
// complete the exchange and the sweep cannot livelock).
var DefaultFaultCutoffs = []int{1, 2, 4}

// faultCutoffProb is the per-encounter cutoff probability used in the cutoff
// budget sweep. Deliberately < 1: a link that is *always* severed after a
// fixed budget can freeze progress entirely, because an aborted batch leaves
// knowledge untouched and is re-offered whole at the next contact.
const faultCutoffProb = 0.3

// FaultRow is one (policy, fault setting) outcome in the sweep.
type FaultRow struct {
	Policy emu.PolicyName
	// Setting describes the injected fault (e.g. "drop=0.30").
	Setting string
	// Delivered is the fraction of messages delivered by the end of the run.
	Delivered float64
	// Delivered12h is the fraction delivered within the 12-hour deadline.
	Delivered12h float64
	// MeanDelayHours is the mean delivery delay.
	MeanDelayHours float64
	// EncountersDropped, SyncsAborted, and ItemsWasted report the faults that
	// actually fired and the transfer volume they destroyed.
	EncountersDropped int
	SyncsAborted      int
	ItemsWasted       int
	// KnowledgeBytesPerEnc is the mean knowledge-frame volume shipped per
	// encounter — the sync-metadata cost the summary protocol
	// (WithSyncSummaries) shrinks.
	KnowledgeBytesPerEnc float64
}

// RunFaultSweep reruns every routing policy under swept encounter-drop
// probabilities and mid-sync cutoff budgets, all driven by one fault seed.
// Nil drops/cutoffs select the defaults. The runs are independent and
// deterministic, so they execute concurrently; rows come back grouped by
// policy, drops before cutoffs, in sweep order.
func RunFaultSweep(tr *trace.Trace, seed int64, drops []float64, cutoffs []int, opts ...Option) ([]FaultRow, error) {
	o := buildOptions(opts)
	if drops == nil {
		drops = DefaultFaultDrops
	}
	if cutoffs == nil {
		cutoffs = DefaultFaultCutoffs
	}
	type job struct {
		policy  emu.PolicyName
		setting string
		cfg     fault.Config
	}
	var jobs []job
	for _, name := range emu.AllPolicies {
		for _, p := range drops {
			jobs = append(jobs, job{name, fmt.Sprintf("drop=%.2f", p),
				fault.Config{Seed: seed, Drop: p}})
		}
		for _, n := range cutoffs {
			jobs = append(jobs, job{name, fmt.Sprintf("cutoff<=%d", n),
				fault.Config{Seed: seed, Cutoff: faultCutoffProb, CutoffItems: n}})
		}
	}
	rows := make([]FaultRow, len(jobs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i, j := range jobs {
		i, j := i, j
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := emu.Run(o.instrument(emu.Config{
				Trace:   tr,
				Policy:  emu.Factory(j.policy, emu.DefaultParams()),
				Workers: o.workers,
				Faults:  j.cfg,
			}))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("experiment: fault sweep %s %s: %w", j.policy, j.setting, err)
				}
				return
			}
			rows[i] = FaultRow{
				Policy:               j.policy,
				Setting:              j.setting,
				Delivered:            float64(res.Summary.DeliveredCount()) / float64(res.Summary.Total()),
				Delivered12h:         res.Summary.DeliveredWithin(Deadline12h),
				MeanDelayHours:       res.Summary.MeanDelayHours(),
				EncountersDropped:    res.EncountersDropped,
				SyncsAborted:         res.SyncsAborted,
				ItemsWasted:          res.ItemsWasted,
				KnowledgeBytesPerEnc: knowledgePerEncounter(res),
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return rows, nil
}

// knowledgePerEncounter reports the mean knowledge-frame bytes shipped per
// encounter of one run (0 when the trace had no encounters).
func knowledgePerEncounter(res *emu.Result) float64 {
	if res.Encounters == 0 {
		return 0
	}
	return float64(res.KnowledgeBytes) / float64(res.Encounters)
}

// FormatFaultSweep renders fault-sweep rows as an aligned table.
func FormatFaultSweep(rows []FaultRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s%-12s%11s%11s%12s%9s%9s%9s%11s\n",
		"policy", "fault", "delivered", "12h deliv", "mean delay", "dropped", "aborted", "wasted", "know B/enc")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s%-12s%10.1f%%%10.1f%%%11.1fh%9d%9d%9d%11.1f\n",
			r.Policy, r.Setting, r.Delivered*100, r.Delivered12h*100, r.MeanDelayHours,
			r.EncountersDropped, r.SyncsAborted, r.ItemsWasted, r.KnowledgeBytesPerEnc)
	}
	return b.String()
}
