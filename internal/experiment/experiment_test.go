package experiment

import (
	"strings"
	"testing"

	"replidtn/internal/emu"
	"replidtn/internal/trace"
)

func smallTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := SmallTrace(5)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFilterSweepShape(t *testing.T) {
	tr := smallTrace(t)
	fs, err := RunFilterSweep(tr, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	fig5 := fs.Fig5()
	if len(fig5) != 2 || len(fig5[0].Y) != 3 {
		t.Fatalf("Fig5 series malformed: %+v", fig5)
	}
	// k = 0 is shared between strategies.
	if fig5[0].Y[0] != fig5[1].Y[0] {
		t.Error("k=0 must be identical for both strategies")
	}
	// Larger filters should not hurt 12-hour delivery for the selected
	// strategy (the paper's monotone improvement).
	fig6 := fs.Fig6()
	sel := fig6[1].Y
	if sel[len(sel)-1] < sel[0] {
		t.Errorf("selected k=4 delivery %.1f%% below k=0 %.1f%%", sel[len(sel)-1], sel[0])
	}
}

func TestFilterSweepDefaultsKs(t *testing.T) {
	tr := smallTrace(t)
	fs, err := RunFilterSweep(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Ks) != len(FilterKs) {
		t.Errorf("default sweep has %d ks", len(fs.Ks))
	}
}

func TestPolicySweepFigures(t *testing.T) {
	tr := smallTrace(t)
	ps, err := RunPolicySweep(tr, emu.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Results) != len(emu.AllPolicies) {
		t.Fatalf("sweep covers %d policies", len(ps.Results))
	}
	cdf := ps.CDFHours(12)
	if len(cdf) != len(emu.AllPolicies) || len(cdf[0].X) != 12 {
		t.Fatalf("CDFHours malformed")
	}
	for _, s := range cdf {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("%s CDF not monotone at %d", s.Label, i)
			}
		}
	}
	days := ps.CDFDays(5)
	if len(days[0].X) != 5 || days[0].X[0] != 1 {
		t.Errorf("CDFDays x-axis malformed: %v", days[0].X)
	}
	// Epidemic should dominate the basic substrate at every bound.
	var basic, epi []float64
	for _, s := range cdf {
		switch s.Label {
		case string(emu.PolicyBasic):
			basic = s.Y
		case string(emu.PolicyEpidemic):
			epi = s.Y
		}
	}
	for i := range basic {
		if epi[i] < basic[i]-1e-9 {
			t.Errorf("epidemic below basic at hour %d: %.1f < %.1f", i+1, epi[i], basic[i])
		}
	}
}

func TestFig8Accounting(t *testing.T) {
	tr := smallTrace(t)
	ps, err := RunPolicySweep(tr, emu.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := ps.Fig8()
	if len(rows) != len(emu.AllPolicies) {
		t.Fatalf("Fig8 has %d rows", len(rows))
	}
	byName := map[emu.PolicyName]Fig8Row{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// The basic substrate stores about two copies per message.
	if got := byName[emu.PolicyBasic].CopiesAtEnd; got > 2.5 {
		t.Errorf("basic end copies = %.2f, want ≈2", got)
	}
	// Spray bounds its footprint; epidemic floods.
	if byName[emu.PolicySpray].CopiesAtEnd > byName[emu.PolicyEpidemic].CopiesAtEnd {
		t.Error("spray should store fewer end copies than epidemic")
	}
	out := FormatFig8(rows)
	if !strings.Contains(out, "copies at end") || !strings.Contains(out, "spray") {
		t.Error("FormatFig8 output malformed")
	}
}

func TestConstrainedSweeps(t *testing.T) {
	tr := smallTrace(t)
	free, err := RunPolicySweep(tr, emu.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bw, err := RunPolicySweep(tr, emu.DefaultParams(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunPolicySweep(tr, emu.DefaultParams(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range emu.AllPolicies {
		if bw.Results[name].ItemsTransferred > free.Results[name].ItemsTransferred {
			t.Errorf("%s: bandwidth constraint increased traffic", name)
		}
		if name == emu.PolicyBasic {
			continue
		}
		// Constrained policies still beat the constrained basic substrate.
		basic := bw.Results[emu.PolicyBasic].Summary.DeliveredWithin(Deadline12h)
		if got := bw.Results[name].Summary.DeliveredWithin(Deadline12h); got < basic-1e-9 {
			t.Errorf("%s under bandwidth constraint (%.2f) worse than basic (%.2f)", name, got, basic)
		}
		basicSt := st.Results[emu.PolicyBasic].Summary.DeliveredWithin(Deadline12h)
		if got := st.Results[name].Summary.DeliveredWithin(Deadline12h); got < basicSt-1e-9 {
			t.Errorf("%s under storage constraint (%.2f) worse than basic (%.2f)", name, got, basicSt)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table I has %d rows", len(rows))
	}
	out := FormatTable1(rows)
	for _, want := range []string{"Epidemic", "Spray&Wait", "PROPHET", "MaxProp", "Dijkstra"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	out := FormatTable2(emu.DefaultParams())
	for _, want := range []string{"TTL = 10", "copies per message = 8", "P_init = 0.75", "beta = 0.25", "gamma = 0.98", "threshold = 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q in:\n%s", want, out)
		}
	}
}

func TestSmallTraceValid(t *testing.T) {
	tr := smallTrace(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats()
	if st.TotalMessages != 60 || st.Days != 5 {
		t.Errorf("small trace stats: %+v", st)
	}
}

func TestSuiteRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run in -short mode")
	}
	tr := smallTrace(t)
	s := &Suite{Trace: tr, Params: emu.DefaultParams()}
	var b strings.Builder
	if err := s.RunAll(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table I", "Table II", "Fig. 5", "Fig. 6", "Fig. 7(a)", "Fig. 7(b)", "Fig. 8", "Fig. 9", "Fig. 10"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %q", want)
		}
	}
	// Mean delay can be NaN only if a configuration delivered nothing, which
	// must not happen on the small trace.
	if strings.Contains(out, "NaN") {
		t.Error("suite output contains NaN values")
	}
}

func TestSummaryRows(t *testing.T) {
	tr := smallTrace(t)
	ps, err := RunPolicySweep(tr, emu.DefaultParams(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := ps.SummaryRows()
	if len(rows) != len(emu.AllPolicies) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DuplicateReceipts != 0 {
			t.Errorf("%s: duplicates in summary", r.Policy)
		}
		if r.Delivered > r.Total {
			t.Errorf("%s: delivered %d > total %d", r.Policy, r.Delivered, r.Total)
		}
		if r.MedianDelayHours > r.P90DelayHours || r.P90DelayHours > r.MaxDelayHours {
			t.Errorf("%s: percentile ordering violated (%.1f, %.1f, %.1f)",
				r.Policy, r.MedianDelayHours, r.P90DelayHours, r.MaxDelayHours)
		}
	}
	out := FormatSummary(rows)
	if !strings.Contains(out, "cimbiosys") || !strings.Contains(out, "median") {
		t.Error("summary table malformed")
	}
}
