// Package item defines the replicated data items managed by the substrate.
//
// An item carries immutable replicated metadata (source address, destination
// addresses, timestamps) plus an opaque payload. Each stored copy of an item
// may additionally carry host-specific transient metadata — routing fields
// such as a TTL or a remaining-copies count — that is never replicated and
// whose mutation never creates a new version. This separation is what allows
// DTN routing policies to adjust per-copy state (e.g. halving spray copies)
// without the adjusted item appearing as an update that must be re-sent.
package item

import (
	"fmt"

	"replidtn/internal/vclock"
)

// ID uniquely identifies an item across the whole system: the Num-th item
// created by replica Creator. IDs never change across updates to the item.
type ID struct {
	Creator vclock.ReplicaID
	Num     uint64
}

// String renders the ID as "creator/num".
func (id ID) String() string { return fmt.Sprintf("%s/%d", id.Creator, id.Num) }

// IsZero reports whether the ID is the invalid sentinel.
func (id ID) IsZero() bool { return id.Creator == "" && id.Num == 0 }

// Metadata is the replicated, content-addressable part of an item. Filters
// evaluate over metadata; it never changes once the item is created (updates
// replace payload or set the tombstone, keeping metadata intact so filters
// keep matching).
type Metadata struct {
	// Source is the address of the originating endpoint (e.g. "user:17").
	Source string
	// Destinations are the addresses the item is directed to. For the
	// messaging application this is the recipient list.
	Destinations []string
	// Kind is an application-defined type tag (e.g. "message").
	Kind string
	// Created is the creation time in seconds since the start of the
	// simulation (or Unix seconds in live deployments).
	Created int64
	// Expires, when non-zero, is the time after which the item is dead:
	// it is no longer transmitted, delivered, or worth relaying. Expiry
	// models bounded message lifetimes in DTN workloads.
	Expires int64
	// Attrs carries optional application attributes visible to filters.
	Attrs map[string]string
}

// Expired reports whether the metadata's lifetime has passed at time now.
func (m *Metadata) Expired(now int64) bool {
	return m.Expires > 0 && now >= m.Expires
}

// HasDestination reports whether addr is one of the item's destinations.
func (m *Metadata) HasDestination(addr string) bool {
	for _, d := range m.Destinations {
		if d == addr {
			return true
		}
	}
	return false
}

// cloneMetadata deep-copies metadata.
func cloneMetadata(m Metadata) Metadata {
	out := m
	if m.Destinations != nil {
		out.Destinations = append([]string(nil), m.Destinations...)
	}
	if m.Attrs != nil {
		out.Attrs = make(map[string]string, len(m.Attrs))
		for k, v := range m.Attrs {
			out.Attrs[k] = v
		}
	}
	return out
}

// Item is one replicated data item: a version of the logical item identified
// by ID. Prior lists the versions this one supersedes, so a receiver can mark
// obsolete versions as known and never accept them later.
type Item struct {
	ID      ID
	Version vclock.Version
	// Prior holds every earlier version of this item known at update time.
	// It is small in practice: messaging items are updated at most once (a
	// delete by the recipient).
	Prior   []vclock.Version
	Deleted bool
	Meta    Metadata
	Payload []byte
}

// Clone deep-copies the item.
func (it *Item) Clone() *Item {
	out := *it
	out.Meta = cloneMetadata(it.Meta)
	if it.Prior != nil {
		out.Prior = append([]vclock.Version(nil), it.Prior...)
	}
	if it.Payload != nil {
		out.Payload = append([]byte(nil), it.Payload...)
	}
	return &out
}

// Supersedes reports whether this version replaces other (same logical item,
// strictly newer version under the deterministic version order).
func (it *Item) Supersedes(other *Item) bool {
	return it.ID == other.ID && it.Version.Compare(other.Version) > 0
}

// AllVersions returns the item's version plus every superseded version it
// records, for folding into a receiver's knowledge.
func (it *Item) AllVersions() []vclock.Version {
	out := make([]vclock.Version, 0, len(it.Prior)+1)
	out = append(out, it.Version)
	out = append(out, it.Prior...)
	return out
}
