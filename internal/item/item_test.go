package item

import (
	"testing"

	"replidtn/internal/vclock"
)

func TestIDString(t *testing.T) {
	id := ID{Creator: "bus07", Num: 12}
	if got := id.String(); got != "bus07/12" {
		t.Errorf("String() = %q", got)
	}
	if id.IsZero() {
		t.Error("non-zero ID reported zero")
	}
	if !(ID{}).IsZero() {
		t.Error("zero ID not reported zero")
	}
}

func TestMetadataHasDestination(t *testing.T) {
	m := Metadata{Destinations: []string{"user:1", "user:2"}}
	if !m.HasDestination("user:2") {
		t.Error("expected destination match")
	}
	if m.HasDestination("user:3") {
		t.Error("unexpected destination match")
	}
}

func TestItemClone(t *testing.T) {
	it := &Item{
		ID:      ID{Creator: "a", Num: 1},
		Version: vclock.Version{Replica: "a", Seq: 1},
		Prior:   []vclock.Version{{Replica: "a", Seq: 0}},
		Meta: Metadata{
			Source:       "user:1",
			Destinations: []string{"user:2"},
			Attrs:        map[string]string{"k": "v"},
		},
		Payload: []byte("hello"),
	}
	cp := it.Clone()
	cp.Meta.Destinations[0] = "user:9"
	cp.Meta.Attrs["k"] = "w"
	cp.Payload[0] = 'H'
	cp.Prior[0].Seq = 99
	if it.Meta.Destinations[0] != "user:2" {
		t.Error("clone shares Destinations slice")
	}
	if it.Meta.Attrs["k"] != "v" {
		t.Error("clone shares Attrs map")
	}
	if it.Payload[0] != 'h' {
		t.Error("clone shares Payload")
	}
	if it.Prior[0].Seq != 0 {
		t.Error("clone shares Prior slice")
	}
}

func TestItemSupersedes(t *testing.T) {
	id := ID{Creator: "a", Num: 1}
	v1 := &Item{ID: id, Version: vclock.Version{Replica: "a", Seq: 1}}
	v2 := &Item{ID: id, Version: vclock.Version{Replica: "b", Seq: 2}}
	if !v2.Supersedes(v1) {
		t.Error("v2 should supersede v1")
	}
	if v1.Supersedes(v2) {
		t.Error("v1 should not supersede v2")
	}
	other := &Item{ID: ID{Creator: "b", Num: 1}, Version: vclock.Version{Replica: "b", Seq: 9}}
	if other.Supersedes(v1) {
		t.Error("different logical items never supersede each other")
	}
}

func TestItemAllVersions(t *testing.T) {
	it := &Item{
		Version: vclock.Version{Replica: "b", Seq: 2},
		Prior:   []vclock.Version{{Replica: "a", Seq: 1}},
	}
	vs := it.AllVersions()
	if len(vs) != 2 || vs[0] != it.Version || vs[1] != it.Prior[0] {
		t.Errorf("AllVersions() = %v", vs)
	}
}

func TestTransientSetGet(t *testing.T) {
	var tr Transient
	if _, ok := tr.Get(FieldTTL); ok {
		t.Error("nil transient should have no fields")
	}
	tr = tr.Set(FieldTTL, 10)
	if v, ok := tr.Get(FieldTTL); !ok || v != 10 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	if tr.GetInt(FieldTTL) != 10 {
		t.Error("GetInt mismatch")
	}
	if !tr.Has(FieldTTL) {
		t.Error("Has should report the set field")
	}
	if tr.GetInt(FieldCopies) != 0 {
		t.Error("absent int field should read 0")
	}
}

func TestTransientClone(t *testing.T) {
	if Transient(nil).Clone() != nil {
		t.Error("nil clone should stay nil")
	}
	tr := Transient{}.Set(FieldCopies, 8)
	cp := tr.Clone()
	cp.Set(FieldCopies, 4)
	if tr.GetInt(FieldCopies) != 8 {
		t.Error("clone shares storage with original")
	}
}
