package item

// Transient is host-specific, never-replicated per-copy metadata attached to
// a stored item. Routing policies use it for fields like a hop-count-limiting
// TTL (Epidemic routing) or a remaining-copies allowance (Spray and Wait).
// Mutating transient fields does not create a new item version, mirroring the
// internal replication-platform interface the paper describes for adjusting
// the spray "copies" field without triggering re-synchronization.
//
// A nil Transient is a valid empty value for reads; use Set (which
// allocates) or Clone before writing.
type Transient map[string]float64

// Well-known transient field names used by the bundled routing policies.
const (
	// FieldTTL is the remaining hop budget used by Epidemic routing.
	FieldTTL = "ttl"
	// FieldCopies is the remaining copy allowance used by Spray and Wait.
	FieldCopies = "copies"
	// FieldHops counts the hops this copy has traversed from its source;
	// the receiving replica increments it on arrival. Used by MaxProp.
	FieldHops = "hops"
)

// Get returns the value of a transient field and whether it is present.
func (t Transient) Get(field string) (float64, bool) {
	v, ok := t[field]
	return v, ok
}

// GetInt returns a transient field as an int (0 when absent).
func (t Transient) GetInt(field string) int { return int(t[field]) }

// Has reports whether the field is present.
func (t Transient) Has(field string) bool {
	_, ok := t[field]
	return ok
}

// Set stores a transient field, allocating the map if needed, and returns the
// (possibly new) map so callers can write `tr = tr.Set(...)`.
func (t Transient) Set(field string, v float64) Transient {
	if t == nil {
		t = make(Transient, 2)
	}
	t[field] = v
	return t
}

// Clone deep-copies the transient map; nil stays nil.
func (t Transient) Clone() Transient {
	if t == nil {
		return nil
	}
	out := make(Transient, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}
