package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Counter.Value() = %d, want 5", got)
	}

	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("Gauge.Value() = %d, want 7", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil Counter should read 0")
	}

	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil Gauge should read 0")
	}

	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil Histogram should read 0")
	}
	if snap := h.Snapshot(); snap.Count != 0 || snap.Buckets != nil {
		t.Fatalf("nil Histogram snapshot = %+v, want zero", snap)
	}

	var l *SpanLog
	l.SetCapacity(4)
	l.Record(SyncSpan{Peer: "x"})
	if l.Total() != 0 || l.Snapshot() != nil {
		t.Fatal("nil SpanLog should be a no-op")
	}

	var tm *TransportMetrics
	var rm *ReplicaMetrics
	var sm *StoreMetrics
	var dm *DiscoveryMetrics
	var nm *NodeMetrics
	if snap := tm.Snapshot(); snap.EncountersServed != 0 || snap.EncounterMicros.Count != 0 {
		t.Fatal("nil TransportMetrics snapshot should be zero")
	}
	if snap := rm.Snapshot(); snap.SyncsServed != 0 || snap.BatchItems.Count != 0 {
		t.Fatal("nil ReplicaMetrics snapshot should be zero")
	}
	if snap := sm.Snapshot(); snap != (StoreSnapshot{}) {
		t.Fatal("nil StoreMetrics snapshot should be zero")
	}
	if snap := dm.Snapshot(); snap != (DiscoverySnapshot{}) {
		t.Fatal("nil DiscoveryMetrics snapshot should be zero")
	}
	if snap := nm.Snapshot(); snap.Spans != nil || snap.Store != (StoreSnapshot{}) {
		t.Fatal("nil NodeMetrics snapshot should be zero")
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	// Bucket bounds: 0 → bucket 0 (le 0); 1 → le 1; 2,3 → le 3; 4..7 → le 7.
	for _, v := range []int64{0, 1, 2, 3, 4, 7, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
	if got := h.Sum(); got != 17 { // -5 clamps to 0
		t.Fatalf("Sum = %d, want 17", got)
	}
	snap := h.Snapshot()
	want := []HistogramBucket{
		{Le: 0, Count: 2}, // 0 and clamped -5
		{Le: 1, Count: 1},
		{Le: 3, Count: 2},
		{Le: 7, Count: 2},
	}
	if len(snap.Buckets) != len(want) {
		t.Fatalf("Buckets = %+v, want %+v", snap.Buckets, want)
	}
	for i, b := range snap.Buckets {
		if b != want[i] {
			t.Fatalf("Buckets[%d] = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestHistogramHugeValueClampsToLastBucket(t *testing.T) {
	var h Histogram
	h.Observe(1 << 62)
	snap := h.Snapshot()
	if len(snap.Buckets) != 1 {
		t.Fatalf("Buckets = %+v, want one bucket", snap.Buckets)
	}
	wantLe := int64(1)<<uint(histBuckets-1) - 1
	if snap.Buckets[0].Le != wantLe {
		t.Fatalf("Le = %d, want %d (last bucket)", snap.Buckets[0].Le, wantLe)
	}
}

func TestSpanLogRingWraparound(t *testing.T) {
	var l SpanLog
	l.SetCapacity(3)
	for i := 0; i < 5; i++ {
		l.Record(SyncSpan{ItemsSent: i})
	}
	if got := l.Total(); got != 5 {
		t.Fatalf("Total = %d, want 5", got)
	}
	snap := l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}
	for i, want := range []int{2, 3, 4} { // oldest first
		if snap[i].ItemsSent != want {
			t.Fatalf("Snapshot[%d].ItemsSent = %d, want %d", i, snap[i].ItemsSent, want)
		}
	}
}

func TestSpanLogDefaultCapacity(t *testing.T) {
	var l SpanLog
	for i := 0; i < DefaultSpanCapacity+10; i++ {
		l.Record(SyncSpan{ItemsSent: i})
	}
	snap := l.Snapshot()
	if len(snap) != DefaultSpanCapacity {
		t.Fatalf("Snapshot len = %d, want %d", len(snap), DefaultSpanCapacity)
	}
	if snap[0].ItemsSent != 10 {
		t.Fatalf("oldest retained = %d, want 10", snap[0].ItemsSent)
	}
}

func TestConcurrentUse(t *testing.T) {
	var n NodeMetrics
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				n.Transport.BytesRead.Add(2)
				n.Replica.ItemsApplied.Inc()
				n.Store.Live.Add(1)
				n.Replica.BatchItems.Observe(int64(i))
				n.Transport.Spans.Record(SyncSpan{ItemsSent: i})
				_ = n.Snapshot()
			}
		}()
	}
	wg.Wait()
	snap := n.Snapshot()
	if snap.Transport.BytesRead != workers*perWorker*2 {
		t.Fatalf("BytesRead = %d, want %d", snap.Transport.BytesRead, workers*perWorker*2)
	}
	if snap.Replica.ItemsApplied != workers*perWorker {
		t.Fatalf("ItemsApplied = %d, want %d", snap.Replica.ItemsApplied, workers*perWorker)
	}
	if snap.Store.Live != workers*perWorker {
		t.Fatalf("Store.Live = %d, want %d", snap.Store.Live, workers*perWorker)
	}
	if snap.Replica.BatchItems.Count != workers*perWorker {
		t.Fatalf("BatchItems.Count = %d, want %d", snap.Replica.BatchItems.Count, workers*perWorker)
	}
	if got := n.Transport.Spans.Total(); got != workers*perWorker {
		t.Fatalf("Spans.Total = %d, want %d", got, workers*perWorker)
	}
}

func TestNodeSnapshotJSON(t *testing.T) {
	var n NodeMetrics
	n.Transport.EncountersDialed.Inc()
	n.Replica.Stored.Add(3)
	n.Store.Tombstones.Set(2)
	n.Discovery.PeersLive.Set(1)
	n.Transport.Spans.Record(SyncSpan{
		Peer: "peer-1", Role: RoleDial, ItemsSent: 4, BytesOut: 128,
		DurationMicros: 1500,
	})

	data, err := json.Marshal(n.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded NodeSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Transport.EncountersDialed != 1 {
		t.Fatalf("round-trip EncountersDialed = %d, want 1", decoded.Transport.EncountersDialed)
	}
	if decoded.Replica.Stored != 3 {
		t.Fatalf("round-trip Stored = %d, want 3", decoded.Replica.Stored)
	}
	if len(decoded.Spans) != 1 || decoded.Spans[0].Peer != "peer-1" {
		t.Fatalf("round-trip Spans = %+v, want one span for peer-1", decoded.Spans)
	}

	// Key stability: the JSON schema is documented in README.md.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("unmarshal raw: %v", err)
	}
	for _, key := range []string{"transport", "replica", "store", "discovery", "spans"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("snapshot JSON missing %q key: %s", key, data)
		}
	}
}
