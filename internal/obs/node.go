package obs

// This file defines the per-subsystem metric sets a node exposes. Each
// instrumented package (transport, replica, store, discovery) takes an
// optional pointer to its set; nil disables instrumentation entirely. The
// structs are plain field bundles — instrumented code addresses fields
// directly under its own nil guard — and each has a typed Snapshot whose
// JSON encoding is the /metrics wire schema (documented in README.md).

// TransportMetrics counts the TCP encounter path (internal/transport), on
// both the serving and dialing side of one node.
type TransportMetrics struct {
	// EncountersServed / EncountersDialed count completed encounters per
	// role; EncounterErrors counts encounters that failed in either role
	// (the two never overlap for one encounter).
	EncountersServed Counter
	EncountersDialed Counter
	EncounterErrors  Counter
	// FramesRead / FramesWritten count protocol frames (hello, request,
	// response, done) successfully decoded or encoded.
	FramesRead    Counter
	FramesWritten Counter
	// BytesRead / BytesWritten count wire bytes on encounter connections.
	BytesRead    Counter
	BytesWritten Counter
	// ValidationRejected counts frames that decoded but failed structural
	// validation (hostile or broken peers); version mismatches included.
	ValidationRejected Counter
	// DialRetries counts re-dial attempts after transient dial failures.
	DialRetries Counter
	// EncounterMicros aggregates completed-encounter wall durations.
	EncounterMicros Histogram
	// Spans retains the most recent encounter spans.
	Spans SpanLog
}

// TransportSnapshot is TransportMetrics at one instant.
type TransportSnapshot struct {
	EncountersServed   int64             `json:"encounters_served"`
	EncountersDialed   int64             `json:"encounters_dialed"`
	EncounterErrors    int64             `json:"encounter_errors"`
	FramesRead         int64             `json:"frames_read"`
	FramesWritten      int64             `json:"frames_written"`
	BytesRead          int64             `json:"bytes_read"`
	BytesWritten       int64             `json:"bytes_written"`
	ValidationRejected int64             `json:"validation_rejected"`
	DialRetries        int64             `json:"dial_retries"`
	EncounterMicros    HistogramSnapshot `json:"encounter_us"`
}

// Snapshot captures the counters (spans are snapshotted separately; see
// NodeMetrics.Snapshot). Nil-safe.
func (m *TransportMetrics) Snapshot() TransportSnapshot {
	if m == nil {
		return TransportSnapshot{}
	}
	return TransportSnapshot{
		EncountersServed:   m.EncountersServed.Value(),
		EncountersDialed:   m.EncountersDialed.Value(),
		EncounterErrors:    m.EncounterErrors.Value(),
		FramesRead:         m.FramesRead.Value(),
		FramesWritten:      m.FramesWritten.Value(),
		BytesRead:          m.BytesRead.Value(),
		BytesWritten:       m.BytesWritten.Value(),
		ValidationRejected: m.ValidationRejected.Value(),
		DialRetries:        m.DialRetries.Value(),
		EncounterMicros:    m.EncounterMicros.Snapshot(),
	}
}

// ReplicaMetrics counts the replication substrate (internal/replica). In the
// emulation harness one set may be shared by every endpoint, aggregating
// network-wide totals; counters are atomic so sharing is safe.
type ReplicaMetrics struct {
	SyncsInitiated Counter
	SyncsServed    Counter
	SyncsAborted   Counter
	// ItemsSent counts batch items transmitted as source; BatchesApplied
	// and ItemsApplied count target-side work.
	ItemsSent      Counter
	BatchesApplied Counter
	ItemsApplied   Counter
	// Stored / Relayed / Tombstones split applied items by disposition.
	Stored     Counter
	Relayed    Counter
	Tombstones Counter
	// Duplicates must stay 0 under the substrate's at-most-once guarantee.
	Duplicates Counter
	Superseded Counter
	Expired    Counter
	Delivered  Counter
	Evictions  Counter
	// KnowledgeSize is the latest knowledge size (base entries +
	// exceptions) observed after a sync; with a shared set it is the last
	// writer's value, so it is only meaningful per-node.
	KnowledgeSize Gauge
	// BatchItems aggregates applied batch sizes.
	BatchItems Histogram
	// Knowledge-frame accounting for syncs this replica initiates: how its
	// knowledge traveled (full/exact, Bloom digest, or delta against the
	// frontier last sent to the peer — protocol v2 summary mode) and the
	// encoded bytes each representation cost. SummaryFallbacks counts
	// summary syncs that needed an extra exact-knowledge round.
	KnowledgeFullFrames   Counter
	KnowledgeDigestFrames Counter
	KnowledgeDeltaFrames  Counter
	SummaryFallbacks      Counter
	KnowledgeFullBytes    Counter
	KnowledgeDigestBytes  Counter
	KnowledgeDeltaBytes   Counter
}

// ReplicaSnapshot is ReplicaMetrics at one instant.
type ReplicaSnapshot struct {
	SyncsInitiated int64             `json:"syncs_initiated"`
	SyncsServed    int64             `json:"syncs_served"`
	SyncsAborted   int64             `json:"syncs_aborted"`
	ItemsSent      int64             `json:"items_sent"`
	BatchesApplied int64             `json:"batches_applied"`
	ItemsApplied   int64             `json:"items_applied"`
	Stored         int64             `json:"stored"`
	Relayed        int64             `json:"relayed"`
	Tombstones     int64             `json:"tombstones"`
	Duplicates     int64             `json:"duplicates"`
	Superseded     int64             `json:"superseded"`
	Expired        int64             `json:"expired"`
	Delivered      int64             `json:"delivered"`
	Evictions      int64             `json:"evictions"`
	KnowledgeSize  int64             `json:"knowledge_size"`
	BatchItems     HistogramSnapshot `json:"batch_items"`

	KnowledgeFullFrames   int64 `json:"knowledge_full_frames"`
	KnowledgeDigestFrames int64 `json:"knowledge_digest_frames"`
	KnowledgeDeltaFrames  int64 `json:"knowledge_delta_frames"`
	SummaryFallbacks      int64 `json:"summary_fallbacks"`
	KnowledgeFullBytes    int64 `json:"knowledge_full_bytes"`
	KnowledgeDigestBytes  int64 `json:"knowledge_digest_bytes"`
	KnowledgeDeltaBytes   int64 `json:"knowledge_delta_bytes"`
}

// Snapshot captures the counters. Nil-safe.
func (m *ReplicaMetrics) Snapshot() ReplicaSnapshot {
	if m == nil {
		return ReplicaSnapshot{}
	}
	return ReplicaSnapshot{
		SyncsInitiated: m.SyncsInitiated.Value(),
		SyncsServed:    m.SyncsServed.Value(),
		SyncsAborted:   m.SyncsAborted.Value(),
		ItemsSent:      m.ItemsSent.Value(),
		BatchesApplied: m.BatchesApplied.Value(),
		ItemsApplied:   m.ItemsApplied.Value(),
		Stored:         m.Stored.Value(),
		Relayed:        m.Relayed.Value(),
		Tombstones:     m.Tombstones.Value(),
		Duplicates:     m.Duplicates.Value(),
		Superseded:     m.Superseded.Value(),
		Expired:        m.Expired.Value(),
		Delivered:      m.Delivered.Value(),
		Evictions:      m.Evictions.Value(),
		KnowledgeSize:  m.KnowledgeSize.Value(),
		BatchItems:     m.BatchItems.Snapshot(),

		KnowledgeFullFrames:   m.KnowledgeFullFrames.Value(),
		KnowledgeDigestFrames: m.KnowledgeDigestFrames.Value(),
		KnowledgeDeltaFrames:  m.KnowledgeDeltaFrames.Value(),
		SummaryFallbacks:      m.SummaryFallbacks.Value(),
		KnowledgeFullBytes:    m.KnowledgeFullBytes.Value(),
		KnowledgeDigestBytes:  m.KnowledgeDigestBytes.Value(),
		KnowledgeDeltaBytes:   m.KnowledgeDeltaBytes.Value(),
	}
}

// StoreMetrics tracks one store's partition populations (internal/store).
// The gauges move by deltas on every mutation, so they are exact for a
// single store; Restore re-counts in place (subtract old, add restored).
type StoreMetrics struct {
	// Live / Relay / Tombstones gauge the partition populations: live
	// (non-tombstone) entries, live relay entries, and tombstones.
	Live       Gauge
	Relay      Gauge
	Tombstones Gauge
	// Evictions counts relay entries expelled by storage pressure.
	Evictions Counter
}

// StoreSnapshot is StoreMetrics at one instant.
type StoreSnapshot struct {
	Live       int64 `json:"live"`
	Relay      int64 `json:"relay"`
	Tombstones int64 `json:"tombstones"`
	Evictions  int64 `json:"evictions"`
}

// Snapshot captures the gauges. Nil-safe.
func (m *StoreMetrics) Snapshot() StoreSnapshot {
	if m == nil {
		return StoreSnapshot{}
	}
	return StoreSnapshot{
		Live:       m.Live.Value(),
		Relay:      m.Relay.Value(),
		Tombstones: m.Tombstones.Value(),
		Evictions:  m.Evictions.Value(),
	}
}

// DiscoveryMetrics counts the UDP beacon path (internal/discovery).
type DiscoveryMetrics struct {
	BeaconsSent     Counter
	BeaconsReceived Counter
	// BeaconsRejected counts received frames dropped before the registry:
	// malformed gob, version mismatch, our own beacon, missing TCP address.
	BeaconsRejected Counter
	// PeersSeen counts first-sighting events: a peer appearing for the
	// first time or re-appearing after expiry (the OnPeer trigger).
	PeersSeen Counter
	// PeerExpiries counts peers dropped from the registry after TTL.
	PeerExpiries Counter
	// PeersLive gauges the current registry population.
	PeersLive Gauge
}

// DiscoverySnapshot is DiscoveryMetrics at one instant.
type DiscoverySnapshot struct {
	BeaconsSent     int64 `json:"beacons_sent"`
	BeaconsReceived int64 `json:"beacons_received"`
	BeaconsRejected int64 `json:"beacons_rejected"`
	PeersSeen       int64 `json:"peers_seen"`
	PeerExpiries    int64 `json:"peer_expiries"`
	PeersLive       int64 `json:"peers_live"`
}

// Snapshot captures the counters. Nil-safe.
func (m *DiscoveryMetrics) Snapshot() DiscoverySnapshot {
	if m == nil {
		return DiscoverySnapshot{}
	}
	return DiscoverySnapshot{
		BeaconsSent:     m.BeaconsSent.Value(),
		BeaconsReceived: m.BeaconsReceived.Value(),
		BeaconsRejected: m.BeaconsRejected.Value(),
		PeersSeen:       m.PeersSeen.Value(),
		PeerExpiries:    m.PeerExpiries.Value(),
		PeersLive:       m.PeersLive.Value(),
	}
}

// NodeMetrics bundles one live node's full metric set — what cmd/dtnnode
// wires into its subsystems and serves at /metrics.
type NodeMetrics struct {
	Transport TransportMetrics
	Replica   ReplicaMetrics
	Store     StoreMetrics
	Discovery DiscoveryMetrics
	WAL       WALMetrics
}

// NodeSnapshot is the /metrics JSON document.
type NodeSnapshot struct {
	Transport TransportSnapshot `json:"transport"`
	Replica   ReplicaSnapshot   `json:"replica"`
	Store     StoreSnapshot     `json:"store"`
	Discovery DiscoverySnapshot `json:"discovery"`
	WAL       WALSnapshot       `json:"wal"`
	Spans     []SyncSpan        `json:"spans,omitempty"`
}

// Snapshot captures every subsystem plus the retained spans. Nil-safe.
func (n *NodeMetrics) Snapshot() NodeSnapshot {
	if n == nil {
		return NodeSnapshot{}
	}
	return NodeSnapshot{
		Transport: n.Transport.Snapshot(),
		Replica:   n.Replica.Snapshot(),
		Store:     n.Store.Snapshot(),
		Discovery: n.Discovery.Snapshot(),
		WAL:       n.WAL.Snapshot(),
		Spans:     n.Transport.Spans.Snapshot(),
	}
}
