package obs

import "sync"

// Roles a node can play in one encounter span.
const (
	// RoleServe marks an encounter this node accepted (it was dialed).
	RoleServe = "serve"
	// RoleDial marks an encounter this node initiated.
	RoleDial = "dial"
)

// SyncSpan traces one encounter from one node's point of view: which leg
// moved what, how many bytes crossed the wire, how long the exchange took,
// and how it ended. Start and duration are supplied by the caller — obs
// never reads a clock (see the package comment).
type SyncSpan struct {
	// Start is the encounter's start time in Unix nanoseconds, as read by
	// the instrumented package's clock.
	Start int64 `json:"start_unix_ns"`
	// Peer is the remote replica ID when the hello exchange got far enough
	// to learn it, otherwise the remote address.
	Peer string `json:"peer"`
	// Role is RoleServe or RoleDial.
	Role string `json:"role"`
	// ItemsSent counts batch items this node sent on its source leg.
	ItemsSent int `json:"items_sent"`
	// ItemsApplied counts batch items this node applied on its target leg.
	ItemsApplied int `json:"items_applied"`
	// BytesIn and BytesOut count the wire bytes read and written on the
	// encounter's connection, hello frames included.
	BytesIn  int64 `json:"bytes_in"`
	BytesOut int64 `json:"bytes_out"`
	// DurationMicros is the encounter's wall duration in microseconds.
	DurationMicros int64 `json:"duration_us"`
	// Err classifies how the encounter failed ("" for success) — one of the
	// transport error classes: timeout, refused, reset, truncated,
	// validation, protocol, io.
	Err string `json:"err,omitempty"`
}

// DefaultSpanCapacity is the span ring size when none is configured.
const DefaultSpanCapacity = 64

// SpanLog is a fixed-capacity ring of the most recent sync spans. The zero
// value is ready to use with DefaultSpanCapacity; methods on a nil receiver
// are no-ops.
type SpanLog struct {
	mu    sync.Mutex
	buf   []SyncSpan
	next  int
	total int64
}

// SetCapacity sizes the ring (minimum 1) and clears any recorded spans.
// Call it before the log sees traffic.
func (l *SpanLog) SetCapacity(n int) {
	if l == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf = make([]SyncSpan, 0, n)
	l.next = 0
	l.total = 0
}

// Record appends a span, evicting the oldest when the ring is full.
func (l *SpanLog) Record(s SyncSpan) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if cap(l.buf) == 0 {
		l.buf = make([]SyncSpan, 0, DefaultSpanCapacity)
	}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, s)
	} else {
		l.buf[l.next] = s
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.total++
}

// Total returns how many spans were ever recorded, including evicted ones.
func (l *SpanLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained spans, oldest first.
func (l *SpanLog) Snapshot() []SyncSpan {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) == 0 {
		return nil
	}
	out := make([]SyncSpan, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}
