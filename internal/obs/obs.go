// Package obs is the node observability subsystem: atomic counters, gauges,
// and histograms with a snapshot API, plus lightweight sync-span tracing for
// live encounters. It exists so the live path (cmd/dtnnode, transport,
// discovery) and the emulation harness can be inspected while running —
// operational DTN implementations treat node introspection as table stakes.
//
// Design constraints, in priority order:
//
//   - Disabled means free. Every instrumented package takes an optional
//     metrics pointer; a nil pointer is a no-op, and the individual metric
//     types are additionally safe to use through nil receivers. The
//     deterministic emulation engine runs with hooks disabled by default and
//     stays bit-identical (the differential tests guard this); the root
//     BenchmarkSyncHooks benchmark proves the disabled-path overhead is a
//     single nil check.
//   - Deterministic core stays deterministic. obs itself is part of the
//     dtnlint determinism scope: it never reads the wall clock, ambient
//     randomness, or the environment. Anything time-shaped (span start
//     times, durations) is supplied by the caller — packages outside the
//     deterministic core (transport, cmd/dtnnode) read their own clocks.
//   - Stdlib only, like the rest of the module (DESIGN.md §10).
//
// Concurrency: all metric types are safe for concurrent use. Counters,
// gauges, and histograms are lock-free atomics; the span log takes a short
// mutex per record. Snapshots are consistent per metric, not across metrics
// (a snapshot taken mid-encounter may show the bytes counter ahead of the
// encounter counter), which is the usual contract for runtime introspection.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; methods on a nil receiver are no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (callers pass n >= 0; Counter does not
// enforce monotonicity, it just never decrements on its own).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value: it can be set outright or moved by
// deltas. The zero value is ready to use; methods on a nil receiver are
// no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds the value 0 and bucket b holds values in [2^(b-1), 2^b - 1]. 40
// buckets cover up to ~5.5e11 — about 6 days in microseconds or 512 GiB in
// bytes, comfortably past anything a node records.
const histBuckets = 40

// Histogram aggregates non-negative int64 observations (durations in
// microseconds, sizes in bytes, batch item counts) into power-of-two
// buckets. The zero value is ready to use; methods on a nil receiver are
// no-ops. Observations are lock-free.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistogramBucket is one non-empty histogram bucket in a snapshot: Count
// observations were <= Le (and greater than the previous bucket's Le).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at one instant.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. Only non-empty buckets are included, in
// ascending bound order. A nil receiver yields a zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for b := 0; b < histBuckets; b++ {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		le := int64(0)
		if b > 0 {
			le = int64(1)<<uint(b) - 1
		}
		snap.Buckets = append(snap.Buckets, HistogramBucket{Le: le, Count: n})
	}
	return snap
}
