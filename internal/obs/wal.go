package obs

// WALMetrics counts the write-ahead-log persistence backend
// (internal/persist/wal): the incremental append path plus its background
// maintenance. Like every bundle here, a nil pointer disables the hooks.
type WALMetrics struct {
	// Records / Bytes count framed records appended to the live log and the
	// wire bytes they cost (frame header included).
	Records Counter
	Bytes   Counter
	// Flushes counts memtable flushes (each produces one segment and rotates
	// the log); Compactions counts segment merges.
	Flushes     Counter
	Compactions Counter
	// Recoveries counts successful Load replays; TruncatedTails counts
	// recoveries that discarded a torn record at the log tail — nonzero after
	// a crash mid-append, which is expected, not an error.
	Recoveries     Counter
	TruncatedTails Counter
	// Segments gauges the current segment count (manifest population).
	Segments Gauge
}

// WALSnapshot is WALMetrics at one instant.
type WALSnapshot struct {
	Records        int64 `json:"records"`
	Bytes          int64 `json:"bytes"`
	Flushes        int64 `json:"flushes"`
	Compactions    int64 `json:"compactions"`
	Recoveries     int64 `json:"recoveries"`
	TruncatedTails int64 `json:"truncated_tails"`
	Segments       int64 `json:"segments"`
}

// Snapshot captures the counters. Nil-safe.
func (m *WALMetrics) Snapshot() WALSnapshot {
	if m == nil {
		return WALSnapshot{}
	}
	return WALSnapshot{
		Records:        m.Records.Value(),
		Bytes:          m.Bytes.Value(),
		Flushes:        m.Flushes.Value(),
		Compactions:    m.Compactions.Value(),
		Recoveries:     m.Recoveries.Value(),
		TruncatedTails: m.TruncatedTails.Value(),
		Segments:       m.Segments.Value(),
	}
}
