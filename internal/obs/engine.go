package obs

// EngineMetrics instruments the sharded emulation engine's scheduler: how
// the schedule partitions into epochs and region shards, how well the shard
// width feeds the worker pool, and where the wall-clock time of an epoch
// goes (parallel shard execution, parallel per-item fold, sequential
// merge). Durations are wall-clock microseconds supplied by the engine —
// they feed only these histograms, never the deterministic Result. Nil-safe
// like every bundle in this package: a nil *EngineMetrics disables
// collection entirely.
type EngineMetrics struct {
	// Epochs counts schedule epochs processed.
	Epochs Counter
	// Shards counts region shards executed across all epochs.
	Shards Counter
	// EpochShards observes the number of shards per epoch — the
	// parallelism the partition exposed to the worker pool.
	EpochShards Histogram
	// ShardEvents observes events per shard: wide flat histograms mean an
	// even partition, a heavy top bucket means one connected component
	// dominates the epoch and serializes it.
	ShardEvents Histogram
	// ExecMicros observes per-epoch wall time executing shards.
	ExecMicros Histogram
	// FoldMicros observes per-epoch wall time folding per-item effects.
	FoldMicros Histogram
	// MergeMicros observes per-epoch wall time in the sequential merge —
	// the commit latency the sharding exists to minimize.
	MergeMicros Histogram
}

// EngineSnapshot is EngineMetrics at one instant.
type EngineSnapshot struct {
	Epochs      int64             `json:"epochs"`
	Shards      int64             `json:"shards"`
	EpochShards HistogramSnapshot `json:"epoch_shards"`
	ShardEvents HistogramSnapshot `json:"shard_events"`
	ExecMicros  HistogramSnapshot `json:"exec_us"`
	FoldMicros  HistogramSnapshot `json:"fold_us"`
	MergeMicros HistogramSnapshot `json:"merge_us"`
}

// Snapshot captures the counters. Nil-safe.
func (m *EngineMetrics) Snapshot() EngineSnapshot {
	if m == nil {
		return EngineSnapshot{}
	}
	return EngineSnapshot{
		Epochs:      m.Epochs.Value(),
		Shards:      m.Shards.Value(),
		EpochShards: m.EpochShards.Snapshot(),
		ShardEvents: m.ShardEvents.Snapshot(),
		ExecMicros:  m.ExecMicros.Snapshot(),
		FoldMicros:  m.FoldMicros.Snapshot(),
		MergeMicros: m.MergeMicros.Snapshot(),
	}
}
