//go:build corpusgen

package vclock

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz. It is excluded from normal builds by the corpusgen tag; run
//
//	go test -tags corpusgen -run WriteFuzzCorpus ./internal/vclock/
//
// after changing the wire format or the seed set, and commit the result. The
// corpus pins the shapes the fuzzers must keep exploring: canonical
// encodings, non-canonical ones the decoder must normalize, truncations, and
// forged counts.
func TestWriteFuzzCorpus(t *testing.T) {
	seeds := decodeSeeds()
	names := []string{
		"seed-empty", "seed-typical", "seed-noncanonical",
		"seed-truncated", "seed-forged-count", "seed-trailing",
	}
	if len(names) != len(seeds) {
		t.Fatalf("have %d seed names for %d seeds", len(names), len(seeds))
	}
	for i, seed := range seeds {
		writeCorpusFile(t, "FuzzKnowledgeDecode", names[i], seed)
	}
	for i, seed := range seeds {
		writeCorpusFile(t, "FuzzKnowledgeMerge", names[i],
			seed, seeds[(i+1)%len(seeds)])
	}

	digestNames := []string{
		"seed-empty", "seed-typical", "seed-truncated-filter",
		"seed-degenerate-probes", "seed-overflow-words", "seed-trailing",
	}
	dSeeds := digestSeeds()
	if len(digestNames) != len(dSeeds) {
		t.Fatalf("have %d digest seed names for %d seeds", len(digestNames), len(dSeeds))
	}
	for i, seed := range dSeeds {
		writeCorpusFile(t, "FuzzDigestDecode", digestNames[i], seed)
	}

	deltaNames := []string{
		"seed-empty", "seed-typical", "seed-missing-body",
		"seed-noncanonical", "seed-forged-count",
	}
	dlSeeds := deltaSeeds()
	if len(deltaNames) != len(dlSeeds) {
		t.Fatalf("have %d delta seed names for %d seeds", len(deltaNames), len(dlSeeds))
	}
	for i, seed := range dlSeeds {
		writeCorpusFile(t, "FuzzDeltaDecode", deltaNames[i], seed)
	}
}

// writeCorpusFile writes one seed in the `go test fuzz v1` corpus format.
func writeCorpusFile(t *testing.T, target, name string, args ...[]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "go test fuzz v1\n"
	for _, a := range args {
		content += fmt.Sprintf("[]byte(%s)\n", strconv.Quote(string(a)))
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
