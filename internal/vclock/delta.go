package vclock

import (
	"encoding/binary"
	"fmt"
)

// A Delta carries the difference between a replica's current knowledge and
// the frontier it last sent a specific peer, so recurring peer pairs — the
// common case on community and corridor mobility — stop re-shipping a
// knowledge frame that is overwhelmingly unchanged between encounters.
//
// Correctness rests on knowledge being set-monotone: a replica only ever
// learns versions, and exception compaction is set-preserving, so an earlier
// frontier is always a subset of the current knowledge and
// Merge(frontier, changes) reconstructs the current set exactly.
//
// The epoch and generation tags make the scheme crash-safe. Epoch is the
// sending replica's incarnation number (bumped on every restore from a
// snapshot); Gen counts knowledge frames sent to this peer within the
// incarnation. A source applies a delta only when it holds a cached frontier
// with the same epoch and exactly the preceding generation — anything else
// (source restarted and lost the cache, target restarted and reset its
// counters, a frame was lost in between) makes it demand a full-knowledge
// resync rather than risk acting on a stale baseline.
type Delta struct {
	epoch   uint64
	gen     uint64
	changes *Knowledge
}

// NewDelta builds a delta frame. A nil changes is treated as empty
// knowledge (a recurring encounter where nothing was learned in between).
func NewDelta(epoch, gen uint64, changes *Knowledge) *Delta {
	if changes == nil {
		changes = NewKnowledge()
	}
	return &Delta{epoch: epoch, gen: gen, changes: changes}
}

// Epoch returns the sender's incarnation tag.
func (d *Delta) Epoch() uint64 { return d.epoch }

// Gen returns the per-peer knowledge-frame generation within the epoch.
func (d *Delta) Gen() uint64 { return d.gen }

// Changes returns the knowledge learned since the previous generation.
func (d *Delta) Changes() *Knowledge { return d.changes }

// DiffSince returns the knowledge that, merged into old, yields k — i.e.
// Merge(old.Clone(), k.DiffSince(old)).Equal(k) holds whenever old is an
// earlier snapshot of the same monotonically-growing knowledge (old ⊆ k).
// Base entries appear only where the base advanced; exceptions only where
// old does not already contain them.
func (k *Knowledge) DiffSince(old *Knowledge) *Knowledge {
	out := NewKnowledge()
	for r, s := range k.base {
		if s > old.base[r] {
			out.base[r] = s
		}
	}
	for r, ex := range k.extra {
		for s := range ex {
			if old.Contains(Version{Replica: r, Seq: s}) {
				continue
			}
			m := out.extra[r]
			if m == nil {
				m = make(map[uint64]struct{})
				out.extra[r] = m
			}
			m[s] = struct{}{}
		}
	}
	// An exception of k whose base entry did not advance lands in out with a
	// zero base, which may leave it contiguous from zero; fold for canonical
	// form (set-preserving, exactly like decode).
	for r := range out.extra {
		out.compact(r)
	}
	return out
}

// The delta wire format prefixes the knowledge codec with the two tags:
//
//	uvarint epoch   uvarint gen   knowledge encoding (see codec.go)

// MarshalBinary implements encoding.BinaryMarshaler so a Delta can travel
// inside gob-encoded sync requests, like Knowledge does.
func (d *Delta) MarshalBinary() ([]byte, error) {
	return d.AppendBinary(nil)
}

// AppendBinary implements encoding.BinaryAppender (see Knowledge.AppendBinary).
func (d *Delta) AppendBinary(buf []byte) ([]byte, error) {
	buf = binary.AppendUvarint(buf, d.epoch)
	buf = binary.AppendUvarint(buf, d.gen)
	return d.changes.AppendBinary(buf)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. The embedded
// knowledge decode canonicalizes and rejects forged counts, so a hostile
// delta is no more dangerous than a hostile knowledge frame.
func (d *Delta) UnmarshalBinary(data []byte) error {
	pos := 0
	epoch, err := readUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("vclock: decode delta: %w", err)
	}
	gen, err := readUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("vclock: decode delta: %w", err)
	}
	changes := NewKnowledge()
	if err := changes.UnmarshalBinary(data[pos:]); err != nil {
		return fmt.Errorf("vclock: decode delta: %w", err)
	}
	d.epoch, d.gen, d.changes = epoch, gen, changes
	return nil
}

// WireSize returns the exact MarshalBinary length without allocating.
func (d *Delta) WireSize() int {
	return uvarintLen(d.epoch) + uvarintLen(d.gen) + d.changes.WireSize()
}
