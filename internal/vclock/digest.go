package vclock

import (
	"encoding/binary"
	"fmt"
	"math"
)

// A Digest is a compact, lossy summary of a Knowledge value used by the v2
// sync protocol: the contiguous base vector travels exactly (it is already
// O(replicas) and is what gives the substrate its guarantees), while the
// sparse exception set — the part that grows with out-of-order learning — is
// summarized by a Bloom filter sized from the live exception count and a
// target false-positive rate (the parameter choice analyzed by Marandi et
// al. for Bloom-filter knowledge exchange in DTNs).
//
// The filter has no false negatives: every true exception answers
// MayHaveException == true, so a sync source that skips maybe-contained
// versions never retransmits a version the target provably has. A false
// positive, however, would make the source silently withhold a version the
// target lacks; the source therefore treats any maybe answer above the base
// as ambiguity and demands an exact-knowledge fallback round instead of
// guessing (see replica.HandleSyncRequest). That keeps digest-mode syncs
// byte-identical to exact-knowledge syncs while shipping a fraction of the
// bytes whenever no candidate collides with the filter.
//
// The zero value is not usable; build digests with Knowledge.Digest and
// UnmarshalBinary.
type Digest struct {
	base Vector
	// count is the number of exceptions summarized into the filter.
	count uint64
	// k is the number of hash probes per version.
	k uint32
	// bits is the filter, m = 64*len(bits) bits wide.
	bits []uint64
}

// DefaultDigestFPRate is the target false-positive rate used when the
// caller does not choose one. At 1% the filter costs ~9.6 bits per
// exception — roughly a third of the exact varint encoding for typical
// sequence numbers — while keeping fallback rounds rare.
const DefaultDigestFPRate = 0.01

// maxDigestProbes caps the hash-probe count a digest may use or a decoded
// frame may claim; beyond this the filter math is degenerate and a large k
// is only useful to an adversary burning the decoder's CPU.
const maxDigestProbes = 64

// Digest summarizes the knowledge at the given target false-positive rate
// (0 or out-of-range selects DefaultDigestFPRate). The filter width follows
// the standard optimum m = -n·ln(p)/(ln 2)² with k = (m/n)·ln 2 probes.
func (k *Knowledge) Digest(fpRate float64) *Digest {
	if !(fpRate > 0 && fpRate < 1) {
		fpRate = DefaultDigestFPRate
	}
	d := &Digest{base: k.base.Clone()}
	n := k.ExceptionCount()
	if n == 0 {
		return d
	}
	d.count = uint64(n)
	mBits := int(math.Ceil(float64(n) * -math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	words := (mBits + 63) / 64
	probes := int(math.Round(float64(words*64) / float64(n) * math.Ln2))
	if probes < 1 {
		probes = 1
	}
	if probes > maxDigestProbes {
		probes = maxDigestProbes
	}
	d.bits = make([]uint64, words)
	d.k = uint32(probes)
	for r, ex := range k.extra {
		for s := range ex {
			d.add(Version{Replica: r, Seq: s})
		}
	}
	return d
}

// Base returns a copy of the digest's exact base vector.
func (d *Digest) Base() Vector { return d.base.Clone() }

// ExceptionCount returns the number of exceptions summarized by the filter.
func (d *Digest) ExceptionCount() uint64 { return d.count }

// BaseIncludes reports whether the exact base vector covers v.
func (d *Digest) BaseIncludes(v Version) bool { return d.base.Includes(v) }

// MayHaveException reports whether v may be one of the summarized
// exceptions. True exceptions always answer true (no false negatives);
// a true answer for a non-exception is a false positive at roughly the
// digest's target rate.
func (d *Digest) MayHaveException(v Version) bool {
	if d.count == 0 || len(d.bits) == 0 {
		return false
	}
	h1, h2 := hashVersion(v)
	m := uint64(len(d.bits)) * 64
	for i := uint32(0); i < d.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		if d.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

func (d *Digest) add(v Version) {
	h1, h2 := hashVersion(v)
	m := uint64(len(d.bits)) * 64
	for i := uint32(0); i < d.k; i++ {
		bit := (h1 + uint64(i)*h2) % m
		d.bits[bit/64] |= 1 << (bit % 64)
	}
}

// hashVersion derives the two independent 64-bit hashes driving the
// Kirsch–Mitzenmacher double-hashing scheme g_i = h1 + i·h2. FNV-1a over
// the replica ID and big-endian sequence gives h1; h2 is a mixed, odd
// variant so successive probes stride the whole filter.
func hashVersion(v Version) (h1, h2 uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(v.Replica); i++ {
		h ^= uint64(v.Replica[i])
		h *= prime64
	}
	for shift := 56; shift >= 0; shift -= 8 {
		h ^= (v.Seq >> uint(shift)) & 0xff
		h *= prime64
	}
	// splitmix64-style finalization decorrelates h2 from h1.
	z := h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return h, z | 1
}

// The digest wire format extends the knowledge codec's conventions:
//
//	uvarint nBase   { uvarint len(id), id bytes, uvarint seq } * nBase
//	uvarint count   uvarint k   uvarint nWords   8-byte LE word * nWords
//
// Base entries are sorted by replica ID so equal digests encode to equal
// bytes. An empty exception set encodes count = k = nWords = 0.

// MarshalBinary implements encoding.BinaryMarshaler so a Digest can travel
// inside gob-encoded sync requests, like Knowledge does.
func (d *Digest) MarshalBinary() ([]byte, error) {
	return d.AppendBinary(nil)
}

// AppendBinary implements encoding.BinaryAppender (see Knowledge.AppendBinary).
func (d *Digest) AppendBinary(buf []byte) ([]byte, error) {
	buf = appendVector(buf, d.base)
	buf = binary.AppendUvarint(buf, d.count)
	buf = binary.AppendUvarint(buf, uint64(d.k))
	buf = binary.AppendUvarint(buf, uint64(len(d.bits)))
	for _, w := range d.bits {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler with the same
// hostile-input posture as the knowledge codec: the bytes come from a peer,
// so forged counts must never drive allocations, degenerate probe counts
// are rejected, and zero base entries are dropped for canonical form.
func (d *Digest) UnmarshalBinary(data []byte) error {
	pos := 0
	base, err := readVector(data, &pos)
	if err != nil {
		return fmt.Errorf("vclock: decode digest: %w", err)
	}
	count, err := readUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("vclock: decode digest: %w", err)
	}
	probes, err := readUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("vclock: decode digest: %w", err)
	}
	nWords, err := readUvarint(data, &pos)
	if err != nil {
		return fmt.Errorf("vclock: decode digest: %w", err)
	}
	if probes > maxDigestProbes {
		return fmt.Errorf("vclock: digest claims %d hash probes (max %d)", probes, maxDigestProbes)
	}
	// Every filter word is exactly 8 bytes, so the word count must match
	// the remaining input exactly — anything else is forged or truncated.
	// Compare by division: nWords*8 wraps for nWords >= 2^61, which would
	// let a forged count pass the check and drive the allocation below.
	if rem := len(data) - pos; rem%8 != 0 || nWords != uint64(rem/8) {
		return fmt.Errorf("vclock: digest claims %d filter words, %d bytes remain", nWords, rem)
	}
	if count > 0 && (probes == 0 || nWords == 0) {
		return fmt.Errorf("vclock: digest summarizes %d exceptions with an empty filter", count)
	}
	if count == 0 && (probes != 0 || nWords != 0) {
		return fmt.Errorf("vclock: digest carries a filter for zero exceptions")
	}
	d.base = base
	d.count = count
	d.k = uint32(probes)
	d.bits = nil
	if nWords > 0 {
		d.bits = make([]uint64, nWords)
		for i := range d.bits {
			d.bits[i] = binary.LittleEndian.Uint64(data[pos:])
			pos += 8
		}
	}
	return nil
}

// WireSize returns the exact MarshalBinary length without allocating,
// for byte accounting on the sync hot path.
func (d *Digest) WireSize() int {
	n := vectorWireSize(d.base)
	n += uvarintLen(d.count) + uvarintLen(uint64(d.k)) + uvarintLen(uint64(len(d.bits)))
	return n + 8*len(d.bits)
}
