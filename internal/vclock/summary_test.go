package vclock

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomKnowledge builds knowledge with a random base/exception shape:
// a few creators, random base prefixes, random sparse exceptions.
func randomKnowledge(rng *rand.Rand) *Knowledge {
	k := NewKnowledge()
	creators := []ReplicaID{"a", "bus-7", "c", "dd"}
	for _, r := range creators {
		base := rng.Intn(20)
		for s := 1; s <= base; s++ {
			k.Add(Version{Replica: r, Seq: uint64(s)})
		}
		for i := 0; i < rng.Intn(10); i++ {
			k.Add(Version{Replica: r, Seq: uint64(base + 2 + rng.Intn(60))})
		}
	}
	return k
}

func TestDigestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := randomKnowledge(rng)
		d := k.Digest(0.01)
		for r, ex := range k.extra {
			for s := range ex {
				v := Version{Replica: r, Seq: s}
				if !d.MayHaveException(v) {
					t.Fatalf("trial %d: digest of %v lost exception %v", trial, k, v)
				}
			}
		}
		if !d.Base().Equal(k.base) {
			t.Fatalf("trial %d: digest base %v != knowledge base %v", trial, d.Base(), k.base)
		}
	}
}

func TestDigestSizing(t *testing.T) {
	k := NewKnowledge()
	for i := 0; i < 1000; i++ {
		// All exceptions: odd sequences only, never contiguous.
		k.Add(Version{Replica: "src", Seq: uint64(3 + 2*i)})
	}
	d := k.Digest(0.01)
	if d.ExceptionCount() != 1000 {
		t.Fatalf("digest counts %d exceptions, want 1000", d.ExceptionCount())
	}
	// m = -n ln p / (ln 2)^2 ≈ 9.585 bits per element at p = 0.01.
	wantBits := int(math.Ceil(1000 * -math.Log(0.01) / (math.Ln2 * math.Ln2)))
	gotBits := 64 * len(d.bits)
	if gotBits < wantBits || gotBits >= wantBits+64 {
		t.Fatalf("filter is %d bits, want %d rounded up to a word", gotBits, wantBits)
	}
	// k = (m/n) ln 2 ≈ 6.6 probes at p = 0.01.
	if d.k < 5 || d.k > 8 {
		t.Fatalf("filter uses %d probes, want ≈7", d.k)
	}

	// A tighter FP target must spend more bits.
	tight := k.Digest(0.0001)
	if len(tight.bits) <= len(d.bits) {
		t.Fatalf("0.01%% digest (%d words) not larger than 1%% digest (%d words)",
			len(tight.bits), len(d.bits))
	}

	// Out-of-range rates fall back to the default.
	if def, bad := k.Digest(0), k.Digest(1.5); len(def.bits) != len(k.Digest(DefaultDigestFPRate).bits) ||
		len(bad.bits) != len(def.bits) {
		t.Fatal("out-of-range fp rate did not select the default")
	}
}

func TestDigestObservedFPRate(t *testing.T) {
	k := NewKnowledge()
	for i := 0; i < 2000; i++ {
		k.Add(Version{Replica: "src", Seq: uint64(3 + 2*i)})
	}
	d := k.Digest(0.01)
	fps := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		// Even sequences are never members.
		if d.MayHaveException(Version{Replica: "src", Seq: uint64(10000 + 2*i)}) {
			fps++
		}
	}
	rate := float64(fps) / probes
	if rate > 0.03 {
		t.Fatalf("observed false-positive rate %.4f far above the 0.01 target", rate)
	}
}

func TestDigestEmptyAndBaseOnly(t *testing.T) {
	empty := NewKnowledge().Digest(0.01)
	if empty.ExceptionCount() != 0 || empty.bits != nil {
		t.Fatalf("empty digest carries a filter: %+v", empty)
	}
	if empty.MayHaveException(Version{Replica: "a", Seq: 1}) {
		t.Fatal("empty digest claims a member")
	}

	k := NewKnowledge()
	for s := uint64(1); s <= 9; s++ {
		k.Add(Version{Replica: "a", Seq: s})
	}
	d := k.Digest(0.01)
	if d.ExceptionCount() != 0 {
		t.Fatalf("base-only digest claims %d exceptions", d.ExceptionCount())
	}
	if !d.BaseIncludes(Version{Replica: "a", Seq: 9}) || d.BaseIncludes(Version{Replica: "a", Seq: 10}) {
		t.Fatal("digest base does not mirror the knowledge base")
	}
}

func TestDigestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		k := randomKnowledge(rng)
		d := k.Digest(0.02)
		enc, err := d.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != d.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d", d.WireSize(), len(enc))
		}
		var back Digest
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if !back.base.Equal(d.base) || back.count != d.count || back.k != d.k {
			t.Fatalf("round-trip changed digest header: %+v -> %+v", d, &back)
		}
		if len(back.bits) != len(d.bits) {
			t.Fatalf("round-trip changed filter width")
		}
		for i := range d.bits {
			if back.bits[i] != d.bits[i] {
				t.Fatalf("round-trip changed filter bits at word %d", i)
			}
		}
	}
}

func TestDigestDecodeRejects(t *testing.T) {
	k := NewKnowledge()
	k.Add(Version{Replica: "a", Seq: 3})
	d := k.Digest(0.01)
	valid, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated header":   valid[:1],
		"truncated filter":   valid[:len(valid)-1],
		"trailing bytes":     append(append([]byte{}, valid...), 0xff),
		"forged word count":  {0x00, 0x01, 0x01, 0x7f}, // count=1, k=1, nWords=127, no bytes
		// nWords = 2^61: nWords*8 wraps to 0, matching the zero remaining
		// bytes — the length check must not multiply.
		"overflowing word count": {0x00, 0x01, 0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20},
		"degenerate probes":  {0x00, 0x01, 0x7f, 0x00}, // k=127 > maxDigestProbes
		"filter for nothing": {0x00, 0x00, 0x01, 0x00}, // count=0 but k=1
		"empty filter":       {0x00, 0x01, 0x00, 0x00}, // count=1 but k=0, nWords=0
	}
	for name, data := range cases {
		var bad Digest
		if err := bad.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: decode accepted %x", name, data)
		}
	}
}

func TestDiffSinceReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Property: for any monotone growth old ⊆ new, merging DiffSince(old)
	// into old reconstructs new exactly, and the diff stays canonical.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		old := randomKnowledge(r)
		cur := old.Clone()
		for i := 0; i < r.Intn(40); i++ {
			cur.Add(Version{
				Replica: []ReplicaID{"a", "bus-7", "c", "dd", "new"}[r.Intn(5)],
				Seq:     uint64(1 + r.Intn(120)),
			})
		}
		diff := cur.DiffSince(old)
		checkCanonical(t, diff, "diff")
		rebuilt := old.Clone()
		rebuilt.Merge(diff)
		if !rebuilt.Equal(cur) {
			t.Logf("old=%v cur=%v diff=%v rebuilt=%v", old, cur, diff, rebuilt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}

	// Nothing changed → empty diff.
	k := randomKnowledge(rng)
	if d := k.DiffSince(k); d.Size() != 0 {
		t.Fatalf("self-diff not empty: %v", d)
	}
	// Everything changed since empty knowledge → the diff is the knowledge.
	if d := k.DiffSince(NewKnowledge()); !d.Equal(k) {
		t.Fatalf("diff since empty is %v, want %v", d, k)
	}
}

func TestDiffSinceIsSmall(t *testing.T) {
	old := NewKnowledge()
	for r := 0; r < 50; r++ {
		id := ReplicaID(string(rune('A'+r)) + "-node")
		for s := uint64(1); s <= 200; s++ {
			old.Add(Version{Replica: id, Seq: s})
		}
	}
	cur := old.Clone()
	cur.Add(Version{Replica: "A-node", Seq: 201})
	cur.Add(Version{Replica: "B-node", Seq: 203})
	diff := cur.DiffSince(old)
	if diff.Size() != 2 {
		t.Fatalf("diff tracks %d entries, want 2: %v", diff.Size(), diff)
	}
	if full, d := cur.WireSize(), diff.WireSize(); d*10 > full {
		t.Fatalf("delta (%dB) not ≪ full knowledge (%dB)", d, full)
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		d := NewDelta(uint64(rng.Intn(5)+1), uint64(rng.Intn(100)), randomKnowledge(rng))
		enc, err := d.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if len(enc) != d.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d", d.WireSize(), len(enc))
		}
		var back Delta
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if back.Epoch() != d.Epoch() || back.Gen() != d.Gen() || !back.Changes().Equal(d.Changes()) {
			t.Fatalf("round-trip changed delta: %v/%v/%v -> %v/%v/%v",
				d.epoch, d.gen, d.changes, back.epoch, back.gen, back.changes)
		}
	}

	// nil changes means an empty frame, and it still round-trips.
	d := NewDelta(3, 9, nil)
	enc, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Delta
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if back.Changes().Size() != 0 || back.Epoch() != 3 || back.Gen() != 9 {
		t.Fatalf("empty delta round-trip: %+v", &back)
	}

	var bad Delta
	if err := bad.UnmarshalBinary([]byte{0x01}); err == nil {
		t.Fatal("decode accepted a truncated delta")
	}
}

func TestKnowledgeWireSize(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		k := randomKnowledge(rng)
		enc, err := k.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if k.WireSize() != len(enc) {
			t.Fatalf("WireSize %d != encoded length %d for %v", k.WireSize(), len(enc), k)
		}
	}
	if got := NewKnowledge().WireSize(); got != 2 {
		t.Fatalf("empty knowledge wire size %d, want 2", got)
	}
}

func TestDigestMarshalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	k := randomKnowledge(rng)
	d := k.Digest(0.01)
	a, _ := d.MarshalBinary()
	b, _ := d.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("digest marshal not deterministic")
	}
}
