package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVersionIsZero(t *testing.T) {
	if !(Version{}).IsZero() {
		t.Error("zero Version should report IsZero")
	}
	if (Version{Replica: "a", Seq: 1}).IsZero() {
		t.Error("non-zero Version should not report IsZero")
	}
}

func TestVersionString(t *testing.T) {
	got := Version{Replica: "nodeA", Seq: 42}.String()
	if got != "nodeA:42" {
		t.Errorf("String() = %q, want %q", got, "nodeA:42")
	}
}

func TestVersionCompareSameReplica(t *testing.T) {
	a1 := Version{Replica: "a", Seq: 1}
	a2 := Version{Replica: "a", Seq: 2}
	if a1.Compare(a2) != -1 {
		t.Error("a:1 should be older than a:2")
	}
	if a2.Compare(a1) != 1 {
		t.Error("a:2 should be newer than a:1")
	}
	if a1.Compare(a1) != 0 {
		t.Error("a:1 should equal itself")
	}
}

func TestVersionCompareConcurrentDeterministic(t *testing.T) {
	a := Version{Replica: "a", Seq: 5}
	b := Version{Replica: "b", Seq: 5}
	if a.Compare(b) == b.Compare(a) {
		t.Error("concurrent versions must order antisymmetrically")
	}
	if a.Compare(b) != -1 {
		t.Error("equal-seq tie must break by replica ID")
	}
	c := Version{Replica: "a", Seq: 9}
	if c.Compare(b) != 1 {
		t.Error("higher seq must win the concurrent tiebreak")
	}
}

func TestVectorSetMonotone(t *testing.T) {
	vec := NewVector()
	vec.Set("a", 5)
	vec.Set("a", 3)
	if vec.Get("a") != 5 {
		t.Errorf("Set must never lower a vector entry, got %d", vec.Get("a"))
	}
}

func TestVectorIncludes(t *testing.T) {
	vec := NewVector()
	vec.Set("a", 3)
	if !vec.Includes(Version{Replica: "a", Seq: 3}) {
		t.Error("vector should include a:3")
	}
	if vec.Includes(Version{Replica: "a", Seq: 4}) {
		t.Error("vector should not include a:4")
	}
	if vec.Includes(Version{}) {
		t.Error("vector should never include the zero version")
	}
}

func TestVectorMergeDominates(t *testing.T) {
	a := Vector{"x": 3, "y": 1}
	b := Vector{"x": 1, "z": 7}
	a.Merge(b)
	want := Vector{"x": 3, "y": 1, "z": 7}
	if !a.Equal(want) {
		t.Errorf("merge = %v, want %v", a, want)
	}
	if !a.Dominates(b) {
		t.Error("merged vector must dominate both inputs")
	}
}

func TestVectorString(t *testing.T) {
	vec := Vector{"b": 2, "a": 1}
	if got := vec.String(); got != "{a:1 b:2}" {
		t.Errorf("String() = %q", got)
	}
}

func TestKnowledgeAddContains(t *testing.T) {
	k := NewKnowledge()
	v := Version{Replica: "a", Seq: 1}
	if k.Contains(v) {
		t.Error("empty knowledge should contain nothing")
	}
	if !k.Add(v) {
		t.Error("Add of a new version should return true")
	}
	if k.Add(v) {
		t.Error("Add of a known version should return false")
	}
	if !k.Contains(v) {
		t.Error("knowledge should contain an added version")
	}
}

func TestKnowledgeCompaction(t *testing.T) {
	k := NewKnowledge()
	// Add out of order: 3, 1, 2 — after all three the base should be 3 with
	// no exceptions left.
	k.Add(Version{Replica: "a", Seq: 3})
	if k.ExceptionCount() != 1 {
		t.Fatalf("expected 1 exception after gap, got %d", k.ExceptionCount())
	}
	k.Add(Version{Replica: "a", Seq: 1})
	k.Add(Version{Replica: "a", Seq: 2})
	if k.ExceptionCount() != 0 {
		t.Errorf("exceptions should compact into base, %d left", k.ExceptionCount())
	}
	if got := k.Base().Get("a"); got != 3 {
		t.Errorf("base = %d, want 3", got)
	}
}

func TestKnowledgeCount(t *testing.T) {
	k := NewKnowledge()
	k.Add(Version{Replica: "a", Seq: 1})
	k.Add(Version{Replica: "a", Seq: 2})
	k.Add(Version{Replica: "b", Seq: 5})
	if got := k.Count(); got != 3 {
		t.Errorf("Count() = %d, want 3", got)
	}
}

func TestKnowledgeMerge(t *testing.T) {
	a := NewKnowledge()
	a.Add(Version{Replica: "x", Seq: 1})
	a.Add(Version{Replica: "x", Seq: 5})
	b := NewKnowledge()
	for s := uint64(1); s <= 4; s++ {
		b.Add(Version{Replica: "x", Seq: s})
	}
	a.Merge(b)
	for s := uint64(1); s <= 5; s++ {
		if !a.Contains(Version{Replica: "x", Seq: s}) {
			t.Errorf("merged knowledge missing x:%d", s)
		}
	}
	if a.ExceptionCount() != 0 {
		t.Errorf("merge should have compacted, %d exceptions left", a.ExceptionCount())
	}
}

func TestKnowledgeString(t *testing.T) {
	k := NewKnowledge()
	k.Add(Version{Replica: "a", Seq: 1})
	k.Add(Version{Replica: "a", Seq: 3})
	if got := k.String(); got != "{a:1}+[a:3]" {
		t.Errorf("String() = %q", got)
	}
}

func TestKnowledgeMarshalRoundTrip(t *testing.T) {
	k := NewKnowledge()
	k.Add(Version{Replica: "a", Seq: 1})
	k.Add(Version{Replica: "a", Seq: 2})
	k.Add(Version{Replica: "b", Seq: 9})
	k.Add(Version{Replica: "c", Seq: 4})
	data, err := k.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var out Knowledge
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if !k.Equal(&out) {
		t.Errorf("round trip mismatch: %v vs %v", k, &out)
	}
}

func TestKnowledgeMarshalDeterministic(t *testing.T) {
	build := func(order []Version) *Knowledge {
		k := NewKnowledge()
		for _, v := range order {
			k.Add(v)
		}
		return k
	}
	vs := []Version{{"a", 1}, {"b", 3}, {"a", 4}, {"c", 2}}
	k1 := build(vs)
	k2 := build([]Version{vs[3], vs[1], vs[0], vs[2]})
	d1, _ := k1.MarshalBinary()
	d2, _ := k2.MarshalBinary()
	if string(d1) != string(d2) {
		t.Error("equal knowledge must encode to equal bytes")
	}
}

func TestKnowledgeUnmarshalErrors(t *testing.T) {
	var k Knowledge
	if err := k.UnmarshalBinary([]byte{0xff}); err == nil {
		t.Error("truncated encoding should fail to decode")
	}
	good := NewKnowledge()
	good.Add(Version{Replica: "a", Seq: 1})
	data, _ := good.MarshalBinary()
	if err := k.UnmarshalBinary(append(data, 0x00)); err == nil {
		t.Error("trailing bytes should fail to decode")
	}
}

// randomVersions generates a reproducible random version stream over a small
// replica universe.
func randomVersions(seed int64, n int) []Version {
	rng := rand.New(rand.NewSource(seed))
	replicas := []ReplicaID{"a", "b", "c", "d"}
	out := make([]Version, n)
	for i := range out {
		out[i] = Version{
			Replica: replicas[rng.Intn(len(replicas))],
			Seq:     uint64(rng.Intn(20) + 1),
		}
	}
	return out
}

func TestPropKnowledgeMembershipMatchesSet(t *testing.T) {
	f := func(seed int64) bool {
		k := NewKnowledge()
		ref := make(map[Version]bool)
		for _, v := range randomVersions(seed, 200) {
			k.Add(v)
			ref[v] = true
		}
		// Every version in the reference set must be contained, and a sample
		// of absent versions must not be.
		for v := range ref {
			if !k.Contains(v) {
				return false
			}
		}
		for _, r := range []ReplicaID{"a", "b", "c", "d", "e"} {
			for s := uint64(1); s <= 25; s++ {
				v := Version{Replica: r, Seq: s}
				if k.Contains(v) != ref[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropKnowledgeMergeCommutative(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		mk := func(seed int64) *Knowledge {
			k := NewKnowledge()
			for _, v := range randomVersions(seed, 100) {
				k.Add(v)
			}
			return k
		}
		a1, b1 := mk(seedA), mk(seedB)
		a2, b2 := mk(seedA), mk(seedB)
		a1.Merge(b1)
		b2.Merge(a2)
		return a1.Equal(b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropKnowledgeMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		k := NewKnowledge()
		for _, v := range randomVersions(seed, 150) {
			k.Add(v)
		}
		before := k.Clone()
		k.Merge(before)
		return k.Equal(before)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropKnowledgeMergeMonotone(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := NewKnowledge()
		for _, v := range randomVersions(seedA, 100) {
			a.Add(v)
		}
		b := NewKnowledge()
		for _, v := range randomVersions(seedB, 100) {
			b.Add(v)
		}
		aVersions := randomVersions(seedA, 100)
		a.Merge(b)
		for _, v := range aVersions {
			if !a.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		k := NewKnowledge()
		for _, v := range randomVersions(seed, 120) {
			k.Add(v)
		}
		data, err := k.MarshalBinary()
		if err != nil {
			return false
		}
		var out Knowledge
		if err := out.UnmarshalBinary(data); err != nil {
			return false
		}
		return k.Equal(&out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropCompactionBoundsExceptions(t *testing.T) {
	// Adding every version 1..n for a replica in any order must end with zero
	// exceptions: the encoding is proportional to replicas, not items.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(50)
		k := NewKnowledge()
		for _, p := range perm {
			k.Add(Version{Replica: "solo", Seq: uint64(p + 1)})
		}
		return k.ExceptionCount() == 0 && k.Base().Get("solo") == 50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkKnowledgeAddSequential(b *testing.B) {
	k := NewKnowledge()
	for i := 0; i < b.N; i++ {
		k.Add(Version{Replica: "a", Seq: uint64(i + 1)})
	}
}

func BenchmarkKnowledgeContains(b *testing.B) {
	k := NewKnowledge()
	for s := uint64(1); s <= 1000; s++ {
		k.Add(Version{Replica: "a", Seq: s})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Contains(Version{Replica: "a", Seq: uint64(i%2000) + 1})
	}
}
