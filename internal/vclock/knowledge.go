package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// Knowledge is the set of versions a replica has learned about, represented
// compactly as a base version vector (a contiguous prefix per creator) plus a
// sparse set of exception versions beyond the base. Exceptions are compacted
// into the base automatically as gaps fill in, keeping the structure
// proportional to the number of replicas in steady state.
//
// Knowledge is exchanged during synchronization so the source can determine
// exactly which of its stored versions the target has not yet seen; this is
// what gives the substrate at-most-once delivery without per-message
// acknowledgement lists.
//
// The zero value is not usable; call NewKnowledge.
//
// Clone is copy-on-write: clones share storage with their source until either
// side mutates, so taking a clone is O(1). This is what lets a replica attach
// its knowledge to every outgoing synchronization request without deep-copying
// the whole structure per sync. Shared storage is never mutated in place — a
// mutation first unshares — so a clone remains safe to read concurrently with
// further mutation of its source (and vice versa).
type Knowledge struct {
	base  Vector
	extra map[ReplicaID]map[uint64]struct{}
	// shared marks base/extra as possibly referenced by another Knowledge
	// value; any mutation must unshare first.
	shared bool
}

// NewKnowledge returns empty knowledge.
func NewKnowledge() *Knowledge {
	return &Knowledge{
		base:  NewVector(),
		extra: make(map[ReplicaID]map[uint64]struct{}),
	}
}

// Contains reports whether version v has been learned.
//
//dtn:hotpath
func (k *Knowledge) Contains(v Version) bool {
	if v.Seq == 0 {
		return false
	}
	if k.base[v.Replica] >= v.Seq {
		return true
	}
	_, ok := k.extra[v.Replica][v.Seq]
	return ok
}

// unshare gives k exclusive storage before a mutation. Shared maps are
// abandoned to their other referents, never written.
func (k *Knowledge) unshare() {
	if !k.shared {
		return
	}
	base := k.base.Clone()
	extra := make(map[ReplicaID]map[uint64]struct{}, len(k.extra))
	for r, ex := range k.extra {
		m := make(map[uint64]struct{}, len(ex))
		for s := range ex {
			m[s] = struct{}{}
		}
		extra[r] = m
	}
	k.base, k.extra, k.shared = base, extra, false
}

// Add records version v as learned and compacts exceptions that have become
// contiguous with the base. It returns true if v was newly learned.
//
//dtn:hotpath
func (k *Knowledge) Add(v Version) bool {
	if v.Seq == 0 || k.Contains(v) {
		return false
	}
	k.unshare()
	if k.base[v.Replica]+1 == v.Seq {
		k.base[v.Replica] = v.Seq
		k.compact(v.Replica)
		return true
	}
	ex := k.extra[v.Replica]
	if ex == nil {
		ex = make(map[uint64]struct{})
		k.extra[v.Replica] = ex
	}
	ex[v.Seq] = struct{}{}
	return true
}

// compact folds exceptions for replica r that are contiguous with the base
// into the base vector.
func (k *Knowledge) compact(r ReplicaID) {
	ex := k.extra[r]
	if ex == nil {
		return
	}
	for {
		next := k.base[r] + 1
		if _, ok := ex[next]; !ok {
			break
		}
		delete(ex, next)
		k.base[r] = next
	}
	if len(ex) == 0 {
		delete(k.extra, r)
	}
}

// Merge folds all versions known to other into k.
//
//dtn:hotpath
func (k *Knowledge) Merge(other *Knowledge) {
	if other == nil {
		return
	}
	k.unshare()
	for r, s := range other.base {
		// Everything up to other's base is known; anything in k.extra at or
		// below that base becomes redundant after raising k.base.
		if k.base[r] < s {
			k.base[r] = s
		}
	}
	for r, seqs := range other.extra {
		for s := range seqs {
			if k.base[r] < s {
				ex := k.extra[r]
				if ex == nil {
					ex = make(map[uint64]struct{})
					k.extra[r] = ex
				}
				ex[s] = struct{}{}
			}
		}
	}
	for r, ex := range k.extra {
		for s := range ex {
			if s <= k.base[r] {
				delete(ex, s)
			}
		}
		k.compact(r)
	}
}

// Base returns a copy of the contiguous base vector.
func (k *Knowledge) Base() Vector { return k.base.Clone() }

// ExceptionCount returns the number of versions held outside the base vector.
// It is a direct measure of metadata compactness.
func (k *Knowledge) ExceptionCount() int {
	n := 0
	for _, ex := range k.extra {
		n += len(ex)
	}
	return n
}

// Size returns the total number of tracked entries: one per replica in the
// base plus one per exception.
func (k *Knowledge) Size() int {
	return len(k.base) + k.ExceptionCount()
}

// Count returns the total number of versions the knowledge contains.
func (k *Knowledge) Count() uint64 {
	var n uint64
	for _, s := range k.base {
		n += s
	}
	return n + uint64(k.ExceptionCount())
}

// Clone returns a logically independent copy in O(1): the copy shares
// storage with k until either side next mutates (copy-on-write). Reading the
// clone is safe even while k keeps mutating, because mutation never writes
// shared maps in place.
//
//dtn:hotpath
func (k *Knowledge) Clone() *Knowledge {
	k.shared = true
	return &Knowledge{base: k.base, extra: k.extra, shared: true}
}

// Equal reports whether two knowledge values contain the same version set.
func (k *Knowledge) Equal(other *Knowledge) bool {
	if other == nil {
		return false
	}
	if !k.base.Equal(other.base) {
		return false
	}
	if len(k.extra) != len(other.extra) {
		return false
	}
	for r, ex := range k.extra {
		oex := other.extra[r]
		if len(ex) != len(oex) {
			return false
		}
		for s := range ex {
			if _, ok := oex[s]; !ok {
				return false
			}
		}
	}
	return true
}

// String renders knowledge deterministically, e.g. "{a:3 b:7}+[b:9 b:12]".
func (k *Knowledge) String() string {
	var b strings.Builder
	b.WriteString(k.base.String())
	if k.ExceptionCount() > 0 {
		versions := make([]Version, 0, k.ExceptionCount())
		for r, ex := range k.extra {
			for s := range ex {
				versions = append(versions, Version{Replica: r, Seq: s})
			}
		}
		sort.Slice(versions, func(i, j int) bool {
			if versions[i].Replica != versions[j].Replica {
				return versions[i].Replica < versions[j].Replica
			}
			return versions[i].Seq < versions[j].Seq
		})
		b.WriteString("+[")
		for i, v := range versions {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(v.String())
		}
		b.WriteByte(']')
	}
	return b.String()
}

// knowledgeDoc is the wire representation used for gob encoding.
type knowledgeDoc struct {
	Base  Vector
	Extra map[ReplicaID][]uint64
}

// MarshalBinary implements encoding.BinaryMarshaler via a deterministic
// document form so Knowledge can travel inside gob-encoded sync requests.
func (k *Knowledge) MarshalBinary() ([]byte, error) {
	return k.AppendBinary(nil)
}

// AppendBinary implements encoding.BinaryAppender: it appends the exact
// MarshalBinary encoding to buf and returns the extended slice, so callers
// assembling larger frames (the internal/wire codec) reuse one buffer
// instead of marshaling into a throwaway allocation.
func (k *Knowledge) AppendBinary(buf []byte) ([]byte, error) {
	doc := knowledgeDoc{Base: k.base, Extra: make(map[ReplicaID][]uint64, len(k.extra))}
	for r, ex := range k.extra {
		seqs := make([]uint64, 0, len(ex))
		for s := range ex {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		doc.Extra[r] = seqs
	}
	return appendDoc(buf, doc)
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. Decoded knowledge
// is canonicalized — zero base entries dropped, exceptions at or below the
// base discarded, contiguous exceptions folded into the base — because the
// bytes come from a peer: a malformed or adversarial encoding must not
// produce a Knowledge whose Count double-counts versions or whose Equal
// disagrees with set equality. Encodings produced by MarshalBinary are
// already canonical, so for honest peers this is a no-op.
func (k *Knowledge) UnmarshalBinary(data []byte) error {
	doc, err := decodeDoc(data)
	if err != nil {
		return fmt.Errorf("vclock: decode knowledge: %w", err)
	}
	k.base = doc.Base
	if k.base == nil {
		k.base = NewVector()
	}
	for r, s := range k.base {
		if s == 0 {
			delete(k.base, r)
		}
	}
	// The decoded maps are freshly built, so any previous sharing ends here.
	k.shared = false
	k.extra = make(map[ReplicaID]map[uint64]struct{}, len(doc.Extra))
	for r, seqs := range doc.Extra {
		ex := make(map[uint64]struct{}, len(seqs))
		for _, s := range seqs {
			if s == 0 || s <= k.base[r] {
				continue
			}
			ex[s] = struct{}{}
		}
		if len(ex) > 0 {
			k.extra[r] = ex
		}
	}
	for r := range k.extra {
		k.compact(r)
	}
	return nil
}
