package vclock

import (
	"sync"
	"testing"
)

// TestCloneCopyOnWriteIndependence verifies that a clone and its source stay
// logically independent through mutations on both sides.
func TestCloneCopyOnWriteIndependence(t *testing.T) {
	k := NewKnowledge()
	for s := uint64(1); s <= 5; s++ {
		k.Add(Version{Replica: "a", Seq: s})
	}
	k.Add(Version{Replica: "b", Seq: 7}) // exception

	c := k.Clone()
	if !c.Equal(k) {
		t.Fatal("clone must equal source")
	}

	// Mutating the source must not leak into the clone.
	k.Add(Version{Replica: "a", Seq: 6})
	k.Add(Version{Replica: "b", Seq: 9})
	if c.Contains(Version{Replica: "a", Seq: 6}) || c.Contains(Version{Replica: "b", Seq: 9}) {
		t.Fatal("source mutation leaked into clone")
	}

	// Mutating the clone must not leak into the source.
	c.Add(Version{Replica: "c", Seq: 1})
	if k.Contains(Version{Replica: "c", Seq: 1}) {
		t.Fatal("clone mutation leaked into source")
	}

	// Merge is a mutation too: merging into a clone must not touch the
	// source's storage.
	c2 := k.Clone()
	other := NewKnowledge()
	other.Add(Version{Replica: "d", Seq: 3})
	c2.Merge(other)
	if k.Contains(Version{Replica: "d", Seq: 3}) {
		t.Fatal("merge into clone leaked into source")
	}
}

// TestCloneChainsShareUntilWrite exercises multiple live clones of the same
// source, each diverging independently.
func TestCloneChainsShareUntilWrite(t *testing.T) {
	k := NewKnowledge()
	k.Add(Version{Replica: "a", Seq: 1})
	c1 := k.Clone()
	c2 := k.Clone()
	c3 := c1.Clone()

	k.Add(Version{Replica: "a", Seq: 2})
	c1.Add(Version{Replica: "b", Seq: 1})
	c2.Add(Version{Replica: "c", Seq: 5})

	if c3.Count() != 1 || !c3.Contains(Version{Replica: "a", Seq: 1}) {
		t.Fatalf("grandclone diverged: %s", c3)
	}
	if c1.Contains(Version{Replica: "c", Seq: 5}) || c2.Contains(Version{Replica: "b", Seq: 1}) {
		t.Fatal("sibling clones leaked into each other")
	}
}

// TestCloneConcurrentReadDuringMutation reads a clone from other goroutines
// while the source keeps mutating — the pattern of a sync request's knowledge
// view being consulted by the source replica while the target continues to
// learn versions. Run under -race this proves the copy-on-write handoff is
// race-free.
func TestCloneConcurrentReadDuringMutation(t *testing.T) {
	k := NewKnowledge()
	for s := uint64(1); s <= 100; s++ {
		k.Add(Version{Replica: "a", Seq: s})
	}
	k.Add(Version{Replica: "b", Seq: 50})

	snap := k.Clone()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if !snap.Contains(Version{Replica: "a", Seq: 1}) {
					t.Error("clone lost a version")
					return
				}
				snap.Contains(Version{Replica: "b", Seq: uint64(i%60 + 1)})
				_ = snap.ExceptionCount()
			}
		}()
	}
	for s := uint64(101); s <= 2000; s++ {
		k.Add(Version{Replica: "a", Seq: s})
		if s%10 == 0 {
			k.Add(Version{Replica: "b", Seq: s})
		}
	}
	wg.Wait()
	if snap.Contains(Version{Replica: "a", Seq: 101}) {
		t.Fatal("clone observed post-clone mutation")
	}
}

// TestUnmarshalClearsSharing verifies a clone that is overwritten by decoding
// stops sharing with its source.
func TestUnmarshalClearsSharing(t *testing.T) {
	k := NewKnowledge()
	k.Add(Version{Replica: "a", Seq: 1})
	c := k.Clone()

	fresh := NewKnowledge()
	fresh.Add(Version{Replica: "z", Seq: 9})
	data, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	c.Add(Version{Replica: "z", Seq: 10})
	if k.Contains(Version{Replica: "z", Seq: 9}) || k.Contains(Version{Replica: "z", Seq: 10}) {
		t.Fatal("decoded clone leaked into source")
	}
}
