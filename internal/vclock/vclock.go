// Package vclock provides version identifiers, version vectors, and the
// compact "knowledge" structure used by the replication substrate as a
// vector-based acknowledgement scheme.
//
// Every update in the system is identified by a Version: the Seq-th event
// created by a given replica. A replica's knowledge is the set of versions it
// has learned, stored as a contiguous base vector (per creator) plus a sparse
// exception set, so its size is proportional to the number of replicas rather
// than the number of items in steady state.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// ReplicaID uniquely identifies a replica (a node hosting a replica of the
// collection).
type ReplicaID string

// Version identifies a single update event: the Seq-th event created by
// Replica. Sequence numbers start at 1; the zero Version is invalid and is
// used as a sentinel.
type Version struct {
	Replica ReplicaID
	Seq     uint64
}

// IsZero reports whether v is the invalid sentinel version.
func (v Version) IsZero() bool { return v.Replica == "" && v.Seq == 0 }

// String renders the version as "replica:seq".
func (v Version) String() string { return fmt.Sprintf("%s:%d", v.Replica, v.Seq) }

// Compare orders two versions created by the same replica. It returns -1, 0,
// or +1 when v is older than, equal to, or newer than other. Versions created
// by different replicas are concurrent; Compare breaks the tie
// deterministically by replica ID so that all replicas resolve conflicting
// updates to the same winner.
func (v Version) Compare(other Version) int {
	if v.Replica == other.Replica {
		switch {
		case v.Seq < other.Seq:
			return -1
		case v.Seq > other.Seq:
			return 1
		default:
			return 0
		}
	}
	// Concurrent: deterministic last-writer-wins tiebreak, higher Seq first,
	// then replica ID.
	switch {
	case v.Seq < other.Seq:
		return -1
	case v.Seq > other.Seq:
		return 1
	case v.Replica < other.Replica:
		return -1
	default:
		return 1
	}
}

// Vector is a classic version vector: for each replica, the highest
// contiguous sequence number known. A Vector v "includes" version (r, s) when
// v[r] >= s.
type Vector map[ReplicaID]uint64

// NewVector returns an empty vector.
func NewVector() Vector { return make(Vector) }

// Get returns the highest contiguous sequence known for replica r (0 when
// none).
func (vec Vector) Get(r ReplicaID) uint64 { return vec[r] }

// Set records that all of replica r's versions up to and including seq are
// known. Lowering an existing entry is ignored: vectors are monotone.
func (vec Vector) Set(r ReplicaID, seq uint64) {
	if vec[r] < seq {
		vec[r] = seq
	}
}

// Includes reports whether the vector covers version v.
func (vec Vector) Includes(v Version) bool { return v.Seq != 0 && vec[v.Replica] >= v.Seq }

// Merge folds other into vec, taking the element-wise maximum.
func (vec Vector) Merge(other Vector) {
	for r, s := range other {
		vec.Set(r, s)
	}
}

// Clone returns a deep copy of the vector.
func (vec Vector) Clone() Vector {
	out := make(Vector, len(vec))
	for r, s := range vec {
		out[r] = s
	}
	return out
}

// Equal reports whether two vectors contain identical entries (zero entries
// are ignored).
func (vec Vector) Equal(other Vector) bool {
	for r, s := range vec {
		if s != 0 && other[r] != s {
			return false
		}
	}
	for r, s := range other {
		if s != 0 && vec[r] != s {
			return false
		}
	}
	return true
}

// Dominates reports whether vec includes every version that other includes.
func (vec Vector) Dominates(other Vector) bool {
	for r, s := range other {
		if vec[r] < s {
			return false
		}
	}
	return true
}

// String renders the vector deterministically, e.g. "{a:3 b:7}".
func (vec Vector) String() string {
	ids := make([]string, 0, len(vec))
	for r := range vec {
		ids = append(ids, string(r))
	}
	sort.Strings(ids)
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", id, vec[ReplicaID(id)])
	}
	b.WriteByte('}')
	return b.String()
}
