package vclock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// The knowledge wire format is a compact, deterministic varint encoding:
//
//	uvarint nBase    { uvarint len(id), id bytes, uvarint seq } * nBase
//	uvarint nExtra   { uvarint len(id), id bytes, uvarint nSeqs, uvarint seq* } * nExtra
//
// Entries are sorted by replica ID so equal knowledge always encodes to equal
// bytes, which keeps wire-level tests and caching deterministic.

var errTruncated = errors.New("vclock: truncated knowledge encoding")

func appendDoc(buf []byte, doc knowledgeDoc) ([]byte, error) {
	baseIDs := sortedIDs(len(doc.Base))
	for r := range doc.Base {
		baseIDs = append(baseIDs, string(r))
	}
	sort.Strings(baseIDs)
	buf = binary.AppendUvarint(buf, uint64(len(baseIDs)))
	for _, id := range baseIDs {
		buf = appendString(buf, id)
		buf = binary.AppendUvarint(buf, doc.Base[ReplicaID(id)])
	}
	extraIDs := sortedIDs(len(doc.Extra))
	for r := range doc.Extra {
		extraIDs = append(extraIDs, string(r))
	}
	sort.Strings(extraIDs)
	buf = binary.AppendUvarint(buf, uint64(len(extraIDs)))
	for _, id := range extraIDs {
		buf = appendString(buf, id)
		seqs := doc.Extra[ReplicaID(id)]
		buf = binary.AppendUvarint(buf, uint64(len(seqs)))
		for _, s := range seqs {
			buf = binary.AppendUvarint(buf, s)
		}
	}
	return buf, nil
}

func decodeDoc(data []byte) (knowledgeDoc, error) {
	doc := knowledgeDoc{Base: NewVector(), Extra: make(map[ReplicaID][]uint64)}
	pos := 0
	nBase, err := readUvarint(data, &pos)
	if err != nil {
		return doc, err
	}
	for i := uint64(0); i < nBase; i++ {
		id, err := readString(data, &pos)
		if err != nil {
			return doc, err
		}
		seq, err := readUvarint(data, &pos)
		if err != nil {
			return doc, err
		}
		doc.Base[ReplicaID(id)] = seq
	}
	nExtra, err := readUvarint(data, &pos)
	if err != nil {
		return doc, err
	}
	for i := uint64(0); i < nExtra; i++ {
		id, err := readString(data, &pos)
		if err != nil {
			return doc, err
		}
		nSeqs, err := readUvarint(data, &pos)
		if err != nil {
			return doc, err
		}
		// Every sequence costs at least one byte, so a count exceeding the
		// remaining input is forged — reject it before trusting it as an
		// allocation size.
		if nSeqs > uint64(len(data)-pos) {
			return doc, errTruncated
		}
		seqs := make([]uint64, 0, nSeqs)
		for j := uint64(0); j < nSeqs; j++ {
			s, err := readUvarint(data, &pos)
			if err != nil {
				return doc, err
			}
			seqs = append(seqs, s)
		}
		doc.Extra[ReplicaID(id)] = seqs
	}
	if pos != len(data) {
		return doc, fmt.Errorf("vclock: %d trailing bytes in knowledge encoding", len(data)-pos)
	}
	return doc, nil
}

// appendVector encodes a bare version vector with the same conventions as
// the knowledge base section: uvarint count, then (id, seq) pairs sorted by
// replica ID for deterministic bytes.
func appendVector(buf []byte, v Vector) []byte {
	ids := sortedIDs(len(v))
	for r := range v {
		ids = append(ids, string(r))
	}
	sort.Strings(ids)
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		buf = appendString(buf, id)
		buf = binary.AppendUvarint(buf, v[ReplicaID(id)])
	}
	return buf
}

// readVector decodes a vector written by appendVector, dropping zero entries
// so decoded vectors are canonical regardless of what the peer sent.
func readVector(data []byte, pos *int) (Vector, error) {
	n, err := readUvarint(data, pos)
	if err != nil {
		return nil, err
	}
	v := NewVector()
	for i := uint64(0); i < n; i++ {
		id, err := readString(data, pos)
		if err != nil {
			return nil, err
		}
		seq, err := readUvarint(data, pos)
		if err != nil {
			return nil, err
		}
		if seq > 0 {
			v[ReplicaID(id)] = seq
		}
	}
	return v, nil
}

// uvarintLen returns the encoded length of v without encoding it.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// vectorWireSize returns the appendVector length of v without allocating.
func vectorWireSize(v Vector) int {
	n := uvarintLen(uint64(len(v)))
	for r, s := range v {
		n += uvarintLen(uint64(len(r))) + len(r) + uvarintLen(s)
	}
	return n
}

// WireSize returns the exact MarshalBinary length of the knowledge without
// building the encoding, so sync byte accounting stays allocation-free.
func (k *Knowledge) WireSize() int {
	n := vectorWireSize(k.base)
	n += uvarintLen(uint64(len(k.extra)))
	for r, ex := range k.extra {
		n += uvarintLen(uint64(len(r))) + len(r) + uvarintLen(uint64(len(ex)))
		for s := range ex {
			n += uvarintLen(s)
		}
	}
	return n
}

func sortedIDs(capacity int) []string { return make([]string, 0, capacity) }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarint(data []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(data[*pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	*pos += n
	return v, nil
}

func readString(data []byte, pos *int) (string, error) {
	n, err := readUvarint(data, pos)
	if err != nil {
		return "", err
	}
	if uint64(len(data)-*pos) < n {
		return "", errTruncated
	}
	s := string(data[*pos : *pos+int(n)])
	*pos += int(n)
	return s, nil
}
