package vclock

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// versionList generates random version sets over a few replicas with small
// sequence numbers — dense enough that compaction, exceptions, and gap-fills
// all occur constantly.
type versionList []Version

func (versionList) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(24)
	vs := make(versionList, n)
	replicas := []ReplicaID{"r1", "r2", "r3", "r4"}
	for i := range vs {
		vs[i] = Version{
			Replica: replicas[rng.Intn(len(replicas))],
			Seq:     uint64(1 + rng.Intn(12)),
		}
	}
	return reflect.ValueOf(vs)
}

func buildKnowledge(vs versionList) *Knowledge {
	k := NewKnowledge()
	for _, v := range vs {
		k.Add(v)
	}
	return k
}

// checkCompact asserts the representation invariant: every exception lies
// strictly beyond the base, and the base is maximal (the version right after
// it is never sitting in the exception set — compaction would have folded
// it in).
func checkCompact(t *testing.T, k *Knowledge) bool {
	t.Helper()
	for r, ex := range k.extra {
		if len(ex) == 0 {
			t.Logf("empty exception set retained for %s", r)
			return false
		}
		for s := range ex {
			if s <= k.base[r] {
				t.Logf("exception %s:%d at or below base %d", r, s, k.base[r])
				return false
			}
		}
		if _, ok := ex[k.base[r]+1]; ok {
			t.Logf("base %s:%d not maximal: %d is an exception", r, k.base[r], k.base[r]+1)
			return false
		}
	}
	return true
}

// TestQuickUnionNeverForgets: after merging, the union contains every version
// either side ever learned — knowledge exchange can only grow what a replica
// knows, which is the foundation of at-most-once delivery.
func TestQuickUnionNeverForgets(t *testing.T) {
	prop := func(xs, ys versionList) bool {
		k := buildKnowledge(xs)
		k.Merge(buildKnowledge(ys))
		for _, v := range append(append(versionList{}, xs...), ys...) {
			if !k.Contains(v) {
				t.Logf("union forgot %s", v)
				return false
			}
		}
		return checkCompact(t, k)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionCommutative: merge order cannot matter — encounters happen in
// arbitrary order in a DTN, and both peers must converge on the same
// knowledge.
func TestQuickUnionCommutative(t *testing.T) {
	prop := func(xs, ys versionList) bool {
		ab := buildKnowledge(xs)
		ab.Merge(buildKnowledge(ys))
		ba := buildKnowledge(ys)
		ba.Merge(buildKnowledge(xs))
		if !ab.Equal(ba) {
			t.Logf("merge not commutative: %s vs %s", ab, ba)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionIdempotent: replaying the same knowledge — which disrupted
// encounters do all the time — changes nothing.
func TestQuickUnionIdempotent(t *testing.T) {
	prop := func(xs, ys versionList) bool {
		other := buildKnowledge(ys)
		k := buildKnowledge(xs)
		k.Merge(other)
		once := k.Clone()
		k.Merge(other)
		k.Merge(k.Clone())
		if !k.Equal(once) {
			t.Logf("re-merge changed knowledge: %s vs %s", once, k)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickUnionAssociative: chains of encounters may fold knowledge in any
// grouping and still converge.
func TestQuickUnionAssociative(t *testing.T) {
	prop := func(xs, ys, zs versionList) bool {
		left := buildKnowledge(xs)
		left.Merge(buildKnowledge(ys))
		left.Merge(buildKnowledge(zs))
		yz := buildKnowledge(ys)
		yz.Merge(buildKnowledge(zs))
		right := buildKnowledge(xs)
		right.Merge(yz)
		if !left.Equal(right) {
			t.Logf("merge not associative: %s vs %s", left, right)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickAddMatchesSet: knowledge built by Add behaves exactly like the
// naive version set — same membership, same count — and compaction never
// loses or invents versions.
func TestQuickAddMatchesSet(t *testing.T) {
	prop := func(xs versionList) bool {
		k := buildKnowledge(xs)
		set := make(map[Version]struct{})
		for _, v := range xs {
			set[v] = struct{}{}
		}
		if k.Count() != uint64(len(set)) {
			t.Logf("Count = %d, want %d", k.Count(), len(set))
			return false
		}
		for v := range set {
			if !k.Contains(v) {
				t.Logf("compacted away %s", v)
				return false
			}
		}
		// Spot-check absence: versions never added are never contained.
		for _, r := range []ReplicaID{"r1", "r2", "r3", "r4"} {
			for s := uint64(1); s <= 13; s++ {
				v := Version{Replica: r, Seq: s}
				_, want := set[v]
				if k.Contains(v) != want {
					t.Logf("Contains(%s) = %v, want %v", v, !want, want)
					return false
				}
			}
		}
		return checkCompact(t, k)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIsolation: a copy-on-write clone taken at any point is a
// faithful frozen copy — mutating the source never leaks into it.
func TestQuickCloneIsolation(t *testing.T) {
	prop := func(xs, ys versionList) bool {
		k := buildKnowledge(xs)
		snap := k.Clone()
		frozen := buildKnowledge(xs)
		for _, v := range ys {
			k.Add(v)
		}
		k.Merge(buildKnowledge(ys))
		if !snap.Equal(frozen) {
			t.Logf("clone drifted with its source: %s vs %s", snap, frozen)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
