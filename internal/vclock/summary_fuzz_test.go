package vclock

import (
	"bytes"
	"testing"
)

// The digest and delta codecs are peer-facing like the knowledge codec, so
// they get the same fuzz treatment (mirroring FuzzKnowledgeDecode): decoding
// must never panic, never trust forged counts as allocation sizes, and
// re-encoding a decoded frame must be deterministic and semantics-preserving.

func FuzzDigestDecode(f *testing.F) {
	for _, seed := range digestSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Digest
		if err := d.UnmarshalBinary(data); err != nil {
			return // invalid encodings must only error, never panic
		}
		for r, s := range d.base {
			if s == 0 {
				t.Fatalf("decoded digest base has zero entry for %q", r)
			}
		}

		enc1, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal decoded digest: %v", err)
		}
		enc2, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("digest marshal not deterministic: %x vs %x", enc1, enc2)
		}
		if len(enc1) != d.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d", d.WireSize(), len(enc1))
		}

		var back Digest
		if err := back.UnmarshalBinary(enc1); err != nil {
			t.Fatalf("re-decode canonical encoding: %v", err)
		}
		// The canonical encoding must be a fixed point: decode∘encode is
		// byte-stable and membership answers are unchanged.
		enc3, err := back.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal re-decoded digest: %v", err)
		}
		if !bytes.Equal(enc1, enc3) {
			t.Fatalf("canonical encoding not a fixed point: %x vs %x", enc1, enc3)
		}
		for r, s := range d.base {
			v := Version{Replica: r, Seq: s}
			if !d.BaseIncludes(v) || !back.BaseIncludes(v) {
				t.Fatalf("digest base does not include its own entry %v", v)
			}
		}
		probe := Version{Replica: "p", Seq: 12345}
		if d.MayHaveException(probe) != back.MayHaveException(probe) {
			t.Fatal("round-trip changed a membership answer")
		}
	})
}

func FuzzDeltaDecode(f *testing.F) {
	for _, seed := range deltaSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var d Delta
		if err := d.UnmarshalBinary(data); err != nil {
			return
		}
		// The embedded knowledge decode canonicalizes like the bare codec.
		checkCanonical(t, d.Changes(), "delta changes")

		enc1, err := d.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal decoded delta: %v", err)
		}
		if len(enc1) != d.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d", d.WireSize(), len(enc1))
		}
		var back Delta
		if err := back.UnmarshalBinary(enc1); err != nil {
			t.Fatalf("re-decode canonical encoding: %v", err)
		}
		if back.Epoch() != d.Epoch() || back.Gen() != d.Gen() || !back.Changes().Equal(d.Changes()) {
			t.Fatalf("round-trip changed delta: %d/%d/%v -> %d/%d/%v",
				d.Epoch(), d.Gen(), d.Changes(), back.Epoch(), back.Gen(), back.Changes())
		}

		// Applying the delta to any baseline must fold in exactly its change
		// set (Merge semantics — the substrate's safety net even if tags were
		// matched incorrectly upstream).
		base := NewKnowledge()
		base.Add(Version{Replica: "b", Seq: 1})
		base.Merge(d.Changes())
		for _, v := range sampleVersions(d.Changes()) {
			if !base.Contains(v) {
				t.Fatalf("merged baseline lost delta version %v", v)
			}
		}
	})
}

// digestSeeds returns the in-code seed corpus for FuzzDigestDecode, pinning
// canonical frames plus the reject shapes the decoder validates.
func digestSeeds() [][]byte {
	empty, _ := NewKnowledge().Digest(0.01).MarshalBinary()

	k := NewKnowledge()
	for s := uint64(1); s <= 5; s++ {
		k.Add(Version{Replica: "a", Seq: s})
	}
	for _, s := range []uint64{2, 3, 5, 9} {
		k.Add(Version{Replica: "b", Seq: s})
	}
	typical, _ := k.Digest(0.01).MarshalBinary()

	return [][]byte{
		empty,
		typical,
		// Truncated filter: header claims one word, body supplies none.
		[]byte("\x00\x01\x01\x01"),
		// Degenerate probe count (k = 127).
		[]byte("\x00\x01\x7f\x00"),
		// Overflowing word count: nWords = 2^61 with zero bytes remaining,
		// so nWords*8 wraps to 0 — the decoder must compare by division.
		[]byte("\x00\x01\x01\x80\x80\x80\x80\x80\x80\x80\x80\x20"),
		// Trailing byte after a valid empty digest.
		append(append([]byte{}, empty...), 0x00),
	}
}

// deltaSeeds returns the in-code seed corpus for FuzzDeltaDecode.
func deltaSeeds() [][]byte {
	emptyDelta, _ := NewDelta(1, 1, nil).MarshalBinary()

	k := NewKnowledge()
	for s := uint64(1); s <= 3; s++ {
		k.Add(Version{Replica: "a", Seq: s})
	}
	k.Add(Version{Replica: "b", Seq: 7})
	typical, _ := NewDelta(2, 19, k).MarshalBinary()

	return [][]byte{
		emptyDelta,
		typical,
		// Tags only, knowledge body missing entirely.
		[]byte("\x01\x01"),
		// Non-canonical embedded knowledge (exception below base).
		[]byte("\x01\x02\x01\x01a\x05\x01\x01a\x02\x02\x06"),
		// Forged exception count inside the embedded knowledge.
		[]byte("\x01\x01\x00\x01\x01a\x80\x80\x80\x80\x08"),
	}
}
