package vclock

import (
	"bytes"
	"testing"
)

// The knowledge codec is one of the two parse-hostile surfaces in the system
// (the other is the transport's gob stream): every byte of a knowledge
// encoding arrives from a peer, so decoding must never panic, never trust a
// forged count as an allocation size, and always yield a canonical structure
// whose Merge/Equal/Count behave as set operations. These fuzz targets
// complement the static dtnlint pass with dynamic checking; `make fuzz-smoke`
// runs them briefly on every CI run, and the seed corpus under testdata/fuzz
// (regenerated with `go test -tags corpusgen -run WriteFuzzCorpus`) pins the
// interesting shapes: canonical, non-canonical, truncated, forged-count.

// decodeCanonical unmarshals data, reporting ok=false for invalid encodings.
func decodeCanonical(t *testing.T, data []byte) (*Knowledge, bool) {
	t.Helper()
	k := NewKnowledge()
	if err := k.UnmarshalBinary(data); err != nil {
		return nil, false
	}
	return k, true
}

// checkCanonical fails the test unless k is in canonical form: no zero base
// entries, no exception at or below the base, no exception contiguous with
// the base, no empty exception sets.
func checkCanonical(t *testing.T, k *Knowledge, what string) {
	t.Helper()
	for r, s := range k.base {
		if s == 0 {
			t.Fatalf("%s: zero base entry for %q", what, r)
		}
	}
	for r, ex := range k.extra {
		if len(ex) == 0 {
			t.Fatalf("%s: empty exception set for %q", what, r)
		}
		for s := range ex {
			if s <= k.base[r] {
				t.Fatalf("%s: exception %s:%d at or below base %d", what, r, s, k.base[r])
			}
			if s == k.base[r]+1 {
				t.Fatalf("%s: exception %s:%d contiguous with base %d (not compacted)", what, r, s, k.base[r])
			}
		}
	}
}

// sampleVersions returns a bounded sample of the versions k contains: for
// each replica the first few and the last base version, plus every
// exception. Bounded so a fuzzed base seq of 2^60 cannot make the test
// enumerate forever.
func sampleVersions(k *Knowledge) []Version {
	var vs []Version
	for r, s := range k.base {
		lo := uint64(1)
		for q := lo; q <= s && q <= lo+8; q++ {
			vs = append(vs, Version{Replica: r, Seq: q})
		}
		vs = append(vs, Version{Replica: r, Seq: s})
	}
	for r, ex := range k.extra {
		for s := range ex {
			vs = append(vs, Version{Replica: r, Seq: s})
		}
	}
	return vs
}

func FuzzKnowledgeDecode(f *testing.F) {
	for _, seed := range decodeSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		k, ok := decodeCanonical(t, data)
		if !ok {
			return // invalid encodings must only error, never panic
		}
		checkCanonical(t, k, "decoded")

		// Marshal is deterministic: equal knowledge, equal bytes.
		enc1, err := k.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal decoded knowledge: %v", err)
		}
		enc2, err := k.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("marshal not deterministic: %x vs %x", enc1, enc2)
		}

		// Decode∘encode round-trips to the same version set.
		back := NewKnowledge()
		if err := back.UnmarshalBinary(enc1); err != nil {
			t.Fatalf("re-decode canonical encoding: %v", err)
		}
		if !back.Equal(k) {
			t.Fatalf("round-trip changed knowledge: %v -> %v", k, back)
		}

		// Contains agrees with the structure for a bounded sample.
		for _, v := range sampleVersions(k) {
			if !k.Contains(v) {
				t.Fatalf("decoded knowledge %v does not contain its own version %v", k, v)
			}
		}
		if k.Contains(Version{}) {
			t.Fatal("knowledge contains the zero sentinel version")
		}
	})
}

func FuzzKnowledgeMerge(f *testing.F) {
	seeds := decodeSeeds()
	for i, a := range seeds {
		f.Add(a, seeds[(i+1)%len(seeds)])
	}
	f.Fuzz(func(t *testing.T, da, db []byte) {
		a, ok := decodeCanonical(t, da)
		if !ok {
			return
		}
		b, ok := decodeCanonical(t, db)
		if !ok {
			return
		}

		// Merge is commutative: a∪b == b∪a (decode fresh copies, Merge
		// mutates the receiver).
		ab, _ := decodeCanonical(t, da)
		ab.Merge(b)
		ba, _ := decodeCanonical(t, db)
		ba.Merge(a)
		if !ab.Equal(ba) {
			t.Fatalf("merge not commutative:\n a=%v\n b=%v\n a∪b=%v\n b∪a=%v", a, b, ab, ba)
		}
		checkCanonical(t, ab, "merged")

		// Merge never forgets: every sampled version of either input is
		// contained in the union.
		for _, v := range append(sampleVersions(a), sampleVersions(b)...) {
			if !ab.Contains(v) {
				t.Fatalf("merge forgot %v:\n a=%v\n b=%v\n a∪b=%v", v, a, b, ab)
			}
		}

		// Count(a∪b) equals the size of the set union, computed
		// independently: element-wise max of the bases plus the distinct
		// exceptions above that joint base. Exception folding during Merge
		// must preserve this (each fold trades one exception for one base
		// increment).
		union := a.Base()
		union.Merge(b.Base())
		distinct := make(map[Version]struct{})
		for _, k := range []*Knowledge{a, b} {
			for r, ex := range k.extra {
				for s := range ex {
					if s > union[r] {
						distinct[Version{Replica: r, Seq: s}] = struct{}{}
					}
				}
			}
		}
		var want uint64
		for _, s := range union {
			want += s
		}
		want += uint64(len(distinct))
		if got := ab.Count(); got != want {
			t.Fatalf("merged count %d, want %d:\n a=%v\n b=%v\n a∪b=%v", got, want, a, b, ab)
		}

		// Merge is idempotent: folding b in again changes nothing.
		again, _ := decodeCanonical(t, da)
		again.Merge(b)
		again.Merge(b)
		if !again.Equal(ab) {
			t.Fatalf("merge not idempotent:\n a∪b=%v\n (a∪b)∪b=%v", ab, again)
		}
	})
}

// decodeSeeds returns the in-code seed corpus: the same shapes the
// checked-in testdata/fuzz corpus pins (see corpusgen_test.go).
func decodeSeeds() [][]byte {
	empty := NewKnowledge()
	encEmpty, _ := empty.MarshalBinary()

	k := NewKnowledge()
	for s := uint64(1); s <= 5; s++ {
		k.Add(Version{Replica: "a", Seq: s})
	}
	for _, s := range []uint64{1, 2, 3, 5, 7} {
		k.Add(Version{Replica: "b", Seq: s})
	}
	encTypical, _ := k.MarshalBinary()

	return [][]byte{
		encEmpty,
		encTypical,
		// Non-canonical: base {a:5}, exceptions {a:[2,6]} — 2 is below the
		// base, 6 is contiguous with it; decode must canonicalize both away.
		[]byte("\x01\x01a\x05\x01\x01a\x02\x02\x06"),
		// Truncated: claims five base entries, supplies none.
		[]byte("\x05\x01a"),
		// Forged exception count: claims 2^31 sequences in two bytes.
		[]byte("\x00\x01\x01a\x80\x80\x80\x80\x08"),
		// Trailing garbage after a valid empty document.
		[]byte("\x00\x00\xff"),
	}
}
