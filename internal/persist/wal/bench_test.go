package wal

// Benchmarks behind `make bench-wal` (results recorded in BENCH_wal.json):
// the per-mutation append cost a journaled replica pays — the price of
// continuous durability versus the snapshot backend's free mutations — and
// recovery time as a function of how much history sits in the live log,
// which is what the FlushEvery knob trades against write amplification.

import (
	"errors"
	"fmt"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
)

// benchReplica builds a journaled replica over a fresh MemFS.
func benchReplica(b *testing.B, opts Options) (*replica.Replica, *DB, *MemFS) {
	b.Helper()
	fsys := NewMemFS()
	r := replica.New(replica.Config{ID: "bench", OwnAddresses: []string{"addr:bench"}})
	db, err := Open(fsys, opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Load(); !errors.Is(err, ErrNoState) {
		b.Fatal(err)
	}
	if err := db.Attach(r); err != nil {
		b.Fatal(err)
	}
	return r, db, fsys
}

// BenchmarkWALAppend measures one journaled CreateItem: encode + append +
// fsync (MemFS, so the fsync is a memory watermark — the numbers isolate the
// WAL's own framing and bookkeeping cost from disk latency).
func BenchmarkWALAppend(b *testing.B) {
	payload := []byte("benchmark-payload-of-plausible-size-for-a-dtn-message")
	b.Run("noflush", func(b *testing.B) {
		r, db, _ := benchReplica(b, Options{FlushEvery: -1, Metrics: &obs.WALMetrics{}})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.CreateItem(item.Metadata{Destinations: []string{"addr:x"}}, payload)
		}
		b.StopTimer()
		if err := db.Err(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(db.metrics.Bytes.Value())/float64(b.N), "walB/op")
	})
	b.Run("flush256", func(b *testing.B) {
		// The default shape: a memtable flush into a segment every 256
		// batches, compaction bounding the segment count. Amortized cost of
		// durability including the background maintenance.
		r, db, _ := benchReplica(b, Options{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.CreateItem(item.Metadata{Destinations: []string{"addr:x"}}, payload)
		}
		b.StopTimer()
		if err := db.Err(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkWALRecovery measures Open+Load against a log holding n mutation
// batches — the restart-latency side of the FlushEvery trade-off.
func BenchmarkWALRecovery(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("log=%d", n), func(b *testing.B) {
			r, db, fsys := benchReplica(b, Options{FlushEvery: -1})
			for i := 0; i < n; i++ {
				r.CreateItem(item.Metadata{Destinations: []string{"addr:x"}}, []byte("recovery-bench"))
			}
			if err := db.Err(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db2, err := Open(fsys, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db2.Load(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
