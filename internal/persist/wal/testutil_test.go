package wal

// Shared test machinery: a deterministic scripted workload that exercises
// every journaled mutation kind, used by the round-trip tests, the
// crash-point matrix, and the differential property test. Snapshot equality
// lives in DiffSnapshots (diff.go), shared with the persist and emu suites.

import (
	"fmt"
	"testing"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/replica"
)

// mustSnapshot captures a replica snapshot or fails the test.
func mustSnapshot(t testing.TB, r *replica.Replica) *replica.Snapshot {
	t.Helper()
	snap, err := r.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap
}

// scriptEnv is the deterministic workload harness: a journaled replica under
// test plus a peer that feeds it sync batches, so the script covers every
// mutation kind — creates, updates, tombstones, batch application with
// relayed items and evictions, knowledge merges, identity changes, and
// expiry purges.
type scriptEnv struct {
	t    testing.TB
	r    *replica.Replica
	peer *replica.Replica
	now  int64
}

const scriptSteps = 24

// newScriptEnv builds the pair. The replica under test has a small relay
// capacity (evictions), knowledge merging on (MutMerge), and a scripted
// clock (expiry).
func newScriptEnv(t testing.TB) *scriptEnv {
	env := &scriptEnv{t: t, now: 1000}
	env.r = replica.New(replica.Config{
		ID:             "node-a",
		OwnAddresses:   []string{"alice"},
		RelayCapacity:  3,
		MergeKnowledge: true,
		Now:            func() int64 { return env.now },
	})
	env.peer = replica.New(replica.Config{
		ID:           "node-b",
		OwnAddresses: []string{"bob"},
		Filter:       filter.NewAddresses("alice", "bob", "carol", "dave"),
	})
	return env
}

// step runs scripted operation i on the replica under test. Steps are pure
// functions of (i, prior steps): replaying the same prefix always yields the
// same state, which is what the crash-point oracle relies on.
func (env *scriptEnv) step(i int) {
	t, r, peer := env.t, env.r, env.peer
	t.Helper()
	switch i % 8 {
	case 0: // local create, addressed to self (delivery path)
		r.CreateItem(item.Metadata{Destinations: []string{"alice"}}, []byte(fmt.Sprintf("local-%d", i)))
	case 1: // peer creates for third parties; sync feeds relays -> eviction pressure
		for j := 0; j < 2; j++ {
			peer.CreateItem(item.Metadata{Destinations: []string{"carol"}}, []byte(fmt.Sprintf("relay-%d-%d", i, j)))
		}
		env.sync()
	case 2: // update an item created in step i-2 (version chain, Prior)
		items := r.Items()
		if len(items) > 0 {
			if _, err := r.UpdateItem(items[0].ID, []byte(fmt.Sprintf("upd-%d", i))); err != nil {
				t.Fatalf("update: %v", err)
			}
		}
	case 3: // peer creates for us; sync delivers (MutLearn + MutPut + deliver)
		peer.CreateItem(item.Metadata{Destinations: []string{"alice"}, Created: env.now, Expires: env.now + 300}, []byte(fmt.Sprintf("inbound-%d", i)))
		env.sync()
	case 4: // tombstone (delete propagates like an update)
		items := r.Items()
		if len(items) > 1 {
			if _, err := r.DeleteItem(items[len(items)-1].ID); err != nil {
				t.Fatalf("delete: %v", err)
			}
		}
	case 5: // identity change: pick up carol's mail too (MutIdentity + reclassification)
		addrs := []string{"alice"}
		if i%16 == 5 {
			addrs = []string{"alice", "carol"}
		}
		r.SetIdentity(addrs, nil)
	case 6: // time passes; expire lifetimed items (MutRemove via purge)
		env.now += 400
		r.PurgeExpired()
	case 7: // another sync round; peer's wider filter covers ours -> MutMerge
		peer.CreateItem(item.Metadata{Destinations: []string{"dave"}}, []byte(fmt.Sprintf("wide-%d", i)))
		env.sync()
	}
}

// sync runs one target-side sync round: the replica under test pulls from
// the peer and applies the batch.
func (env *scriptEnv) sync() {
	req := env.r.MakeSyncRequest(0)
	resp := env.peer.HandleSyncRequest(req)
	env.r.ApplyBatch(resp)
}

// runScript executes steps [from, to) — the full script is [0, scriptSteps).
func (env *scriptEnv) runScript(from, to int) {
	for i := from; i < to; i++ {
		env.step(i)
	}
}
