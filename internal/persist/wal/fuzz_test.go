package wal

// FuzzWALReplay throws hostile log bytes at the recovery readers. The replay
// path is the one place the WAL parses bytes it did not just write — a crash
// can hand it literally anything the filesystem kept — so the contract under
// fuzzing is: never panic, never over-allocate on a hostile length field, and
// keep the two readers' personalities straight (the log reader truncates
// unverifiable tails, the segment reader fails loudly). Seeds cover the
// interesting boundaries: a real multi-record log in each encoding era
// (binary, legacy gob, interleaved), torn tails at every kind of cut,
// bit-flipped CRCs, an oversized length prefix (the PR 7 digest lesson), and
// a CRC-valid frame with a malformed binary body. The checked-in corpus
// under testdata/fuzz mirrors these so CI fuzz smoke always starts from
// them; regenerate with WAL_GEN_CORPUS=1.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildLogBytes runs the scripted workload with flushing disabled, so the
// entire history lands in one live log file, and returns that file's bytes —
// a maximally record-dense valid input.
func buildLogBytes(tb testing.TB) []byte {
	tb.Helper()
	fsys := NewMemFS()
	env := newScriptEnv(tb)
	db, err := Open(fsys, Options{FlushEvery: -1})
	if err != nil {
		tb.Fatalf("open: %v", err)
	}
	if _, err := db.Load(); !errors.Is(err, ErrNoState) {
		tb.Fatalf("load: %v", err)
	}
	if err := db.Attach(env.r); err != nil {
		tb.Fatalf("attach: %v", err)
	}
	env.runScript(0, scriptSteps)
	if err := db.Err(); err != nil {
		tb.Fatalf("workload poisoned: %v", err)
	}
	man, ok, err := readManifest(fsys)
	if err != nil || !ok {
		tb.Fatalf("manifest: ok=%v err=%v", ok, err)
	}
	data, err := fsys.ReadFile(man.Log)
	if err != nil {
		tb.Fatalf("read log: %v", err)
	}
	return data
}

// fuzzSeeds returns the seed inputs, shared by the fuzz target and the
// corpus generator so the checked-in files never drift from f.Add.
func fuzzSeeds(tb testing.TB) map[string][]byte {
	valid := buildLogBytes(tb)
	flipCRC := append([]byte(nil), valid...)
	flipCRC[len(flipCRC)/2] ^= 0x40
	midRecord := valid[:len(valid)-3]
	midHeader := valid[:5]
	oversize := make([]byte, recordHeaderLen+4)
	binary.LittleEndian.PutUint32(oversize[0:4], maxRecordLen+1)
	zeroLen := make([]byte, recordHeaderLen+4)
	// A CRC-valid frame whose binary body is malformed (bad codec version):
	// the decodable-but-corrupt case the mixed-format readers must reject.
	badBody, err := appendRecord(nil, recBatchBin, []byte{0xff, 0xff, 0xff})
	if err != nil {
		tb.Fatalf("frame bad-body seed: %v", err)
	}
	return map[string][]byte{
		"valid":      valid,
		"legacy-gob": transcodeLog(tb, valid, 1),
		"mixed":      transcodeLog(tb, valid, 2),
		"flip-crc":   flipCRC,
		"mid-record": midRecord,
		"mid-header": midHeader,
		"oversize":   oversize,
		"zero-len":   zeroLen,
		"bad-body":   append(append([]byte(nil), valid...), badBody...),
		"empty":      nil,
	}
}

func FuzzWALReplay(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The log reader: hostile bytes may truncate (torn tail) or error
		// (decodable-but-malformed record), but must never panic, and a
		// successful replay must yield a state snapshot() can serialize.
		st := newRecState()
		if _, err := st.replayLog(data); err == nil && st.haveMeta {
			if _, err := st.snapshot(); err != nil {
				t.Fatalf("replayed log state does not snapshot: %v", err)
			}
		}
		// The segment reader: same bytes, stricter contract — anything that
		// is not a whole, valid, meta-led record sequence must error, and
		// the only acceptable outcome besides success is an error.
		st2 := newRecState()
		_ = st2.replaySegment(data) //lint:allow errdiscard -- the fuzz property on hostile input is "errors, never panics"; the error value itself carries no invariant
	})
}

// TestReplayLogPrefixStability pins the torn-tail contract the crash matrix
// relies on: appending ANY junk to a valid log never changes what the valid
// prefix recovers to, unless the junk itself decodes as a valid record
// (which random junk cannot — it would need a matching CRC).
func TestReplayLogPrefixStability(t *testing.T) {
	valid := buildLogBytes(t)
	st := newRecState()
	if _, err := st.replayLog(valid); err != nil {
		t.Fatalf("valid log: %v", err)
	}
	want, err := st.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, junk := range [][]byte{{0x00}, {0xff, 0xff, 0xff, 0xff}, make([]byte, 64)} {
		st2 := newRecState()
		truncated, err := st2.replayLog(append(append([]byte(nil), valid...), junk...))
		if err != nil {
			t.Fatalf("junk tail %x: %v", junk, err)
		}
		if !truncated {
			t.Errorf("junk tail %x not reported as truncated", junk)
		}
		got, err := st2.snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if d := DiffSnapshots(want, got); d != "" {
			t.Errorf("junk tail %x changed recovered state: %s", junk, d)
		}
	}
}

// TestGenerateFuzzCorpus writes the seed corpus to testdata in the Go fuzz
// corpus encoding. Skipped unless WAL_GEN_CORPUS=1; run once and commit the
// files so CI's fuzz smoke starts from real record shapes without having to
// rediscover them.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("WAL_GEN_CORPUS") == "" {
		t.Skip("set WAL_GEN_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range fuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
