package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// Record framing, shared by the live log and segment files:
//
//	length  uint32 LE   bytes that follow the 8-byte header (kind + payload)
//	crc     uint32 LE   IEEE CRC-32 over kind + payload
//	kind    uint8       record discriminator
//	payload             gob-encoded record body
//
// The length field lets a reader skip to the next record without decoding;
// the CRC catches torn and bit-flipped records. A live log may legitimately
// end mid-record (the crash the WAL exists to survive), so its reader
// truncates at the first frame that does not check out; segment files were
// fully written and fsynced before the manifest referenced them, so the same
// condition there is corruption and fails recovery loudly.

// Record kinds.
const (
	// recMeta carries a walMeta: the replica-level durable state outside the
	// store (identity, counters, knowledge, policy state).
	recMeta = 1
	// recBatch carries one journaled []replica.Mutation batch (live log).
	recBatch = 2
	// recPut carries one store.EntrySnapshot (segment files).
	recPut = 3
	// recRemove carries one removed item.ID (segment files).
	recRemove = 4
)

// recordHeaderLen is the fixed frame header size (length + crc).
const recordHeaderLen = 8

// maxRecordLen bounds a single record frame. Any larger length field is
// treated as corruption: it is far beyond what one mutation batch or entry
// can encode, and rejecting it keeps a hostile or scrambled log from driving
// a multi-gigabyte allocation (the PR 7 digest-overflow lesson).
const maxRecordLen = 64 << 20

// errCorrupt marks a structurally invalid record where the format promises
// one (segment files, records before a log's truncation point).
var errCorrupt = errors.New("wal: corrupt record")

var crcTable = crc32.MakeTable(crc32.IEEE)

// walMeta is the replica state that lives outside the store: everything a
// replica.Snapshot carries except the entries and, during normal appends,
// the knowledge (which the log carries incrementally via MutLearn/MutMerge).
// A meta record appears at the head of every log generation and segment,
// wholesale-replacing the recovered meta state.
type walMeta struct {
	ID          vclock.ReplicaID
	Seq         uint64
	Own         []string
	FilterAddrs []string
	Knowledge   []byte
	NextArrival uint64
	PolicyState []byte
	Epoch       uint64
}

// appendRecord frames kind+payload onto buf and returns the extended slice.
//
//dtn:hotpath
func appendRecord(buf []byte, kind uint8, payload []byte) []byte {
	var hdr [recordHeaderLen + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	hdr[8] = kind
	crc := crc32.Update(crc32.Checksum(hdr[8:9], crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// encodeRecord gobs body and frames it as one record of the given kind.
func encodeRecord(kind uint8, body any) ([]byte, error) {
	var payload bytes.Buffer
	//lint:allow transientleak -- WAL records restore the same host after a crash, so per-copy transient state (spray allowances, hop budgets) legitimately survives; nothing here crosses to another replica
	if err := gob.NewEncoder(&payload).Encode(body); err != nil {
		return nil, fmt.Errorf("wal: encode record kind %d: %w", kind, err)
	}
	return appendRecord(nil, kind, payload.Bytes()), nil
}

// record is one decoded frame.
type record struct {
	kind    uint8
	payload []byte
}

// readRecord parses the frame at data[off:]. ok is false when the bytes at
// off cannot be a complete, checksum-valid frame — the caller decides
// whether that is a truncatable tail (live log) or corruption (segment).
//
//dtn:hotpath
func readRecord(data []byte, off int) (rec record, next int, ok bool) {
	if off < 0 || len(data)-off < recordHeaderLen {
		return record{}, 0, false
	}
	length := binary.LittleEndian.Uint32(data[off : off+4])
	if length == 0 || length > maxRecordLen || int(length) > len(data)-off-recordHeaderLen {
		return record{}, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	body := data[off+recordHeaderLen : off+recordHeaderLen+int(length)]
	if crc32.Checksum(body, crcTable) != crc {
		return record{}, 0, false
	}
	return record{kind: body[0], payload: body[1:]}, off + recordHeaderLen + int(length), true
}

// decodeBody gob-decodes a record payload into out.
func decodeBody(payload []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return nil
}

// decodeMeta, decodeBatch, decodePut, decodeRemove decode the typed bodies.
func decodeMeta(payload []byte) (walMeta, error) {
	var m walMeta
	err := decodeBody(payload, &m)
	return m, err
}

func decodeBatch(payload []byte) ([]replica.Mutation, error) {
	var b []replica.Mutation
	err := decodeBody(payload, &b)
	return b, err
}

func decodePut(payload []byte) (store.EntrySnapshot, error) {
	var e store.EntrySnapshot
	err := decodeBody(payload, &e)
	if err == nil && e.Item == nil {
		return e, fmt.Errorf("%w: put record without item", errCorrupt)
	}
	return e, err
}

func decodeRemove(payload []byte) (item.ID, error) {
	var id item.ID
	err := decodeBody(payload, &id)
	return id, err
}
