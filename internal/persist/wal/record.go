package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
	"replidtn/internal/wire"
)

// Record framing, shared by the live log and segment files:
//
//	length  uint32 LE   bytes that follow the 8-byte header (kind + payload)
//	crc     uint32 LE   IEEE CRC-32 over kind + payload
//	kind    uint8       record discriminator
//	payload             record body: gob (kinds 1–4) or internal/wire (5–8)
//
// The length field lets a reader skip to the next record without decoding;
// the CRC catches torn and bit-flipped records. A live log may legitimately
// end mid-record (the crash the WAL exists to survive), so its reader
// truncates at the first frame that does not check out; segment files were
// fully written and fsynced before the manifest referenced them, so the same
// condition there is corruption and fails recovery loudly.
//
// The record kind discriminates the payload encoding as well as the payload
// type: kinds 1–4 are the original gob bodies, kinds 5–8 the internal/wire
// binary bodies. Current builds write only the binary kinds; recovery accepts
// both, so logs and segments written before the migration replay unchanged.

// Record kinds.
const (
	// recMeta carries a gob walMeta: the replica-level durable state outside
	// the store (identity, counters, knowledge, policy state). Legacy.
	recMeta = 1
	// recBatch carries one gob-encoded []replica.Mutation batch. Legacy.
	recBatch = 2
	// recPut carries one gob store.EntrySnapshot (segment files). Legacy.
	recPut = 3
	// recRemove carries one gob item.ID (segment files). Legacy.
	recRemove = 4
	// recMetaBin, recBatchBin, recPutBin, recRemoveBin are the same bodies in
	// the internal/wire binary codec — what current builds write.
	recMetaBin   = 5
	recBatchBin  = 6
	recPutBin    = 7
	recRemoveBin = 8
)

// recordHeaderLen is the fixed frame header size (length + crc).
const recordHeaderLen = 8

// maxRecordLen bounds a single record frame, enforced on BOTH sides: a
// writer rejects an oversized payload before anything hits the log (an
// fsynced-then-unrecoverable record would otherwise poison recovery
// silently), and a reader treats a larger length field as corruption — far
// beyond what one mutation batch or entry can encode, and rejecting it keeps
// a hostile or scrambled log from driving a multi-gigabyte allocation (the
// PR 7 digest-overflow lesson). A variable so tests can lower the limit
// without materializing 64 MiB payloads.
var maxRecordLen = uint32(64 << 20)

// errCorrupt marks a structurally invalid record where the format promises
// one (segment files, records before a log's truncation point).
var errCorrupt = errors.New("wal: corrupt record")

// errRecordTooLarge marks a payload whose framed length would exceed
// maxRecordLen. It is reported by the encode side, before any write.
var errRecordTooLarge = errors.New("wal: record exceeds maximum frame length")

var crcTable = crc32.MakeTable(crc32.IEEE)

// walMeta is the replica state that lives outside the store: everything a
// replica.Snapshot carries except the entries and, during normal appends,
// the knowledge (which the log carries incrementally via MutLearn/MutMerge).
// A meta record appears at the head of every log generation and segment,
// wholesale-replacing the recovered meta state.
type walMeta struct {
	ID          vclock.ReplicaID
	Seq         uint64
	Own         []string
	FilterAddrs []string
	Knowledge   []byte
	NextArrival uint64
	PolicyState []byte
	Epoch       uint64
}

// appendRecord frames kind+payload onto buf and returns the extended slice.
// An oversized payload is rejected here, before the caller can write it: a
// frame the reader would refuse must never reach the log.
//
//dtn:hotpath
func appendRecord(buf []byte, kind uint8, payload []byte) ([]byte, error) {
	if uint64(len(payload))+1 > uint64(maxRecordLen) {
		return nil, recordTooLargeError(kind, len(payload))
	}
	var hdr [recordHeaderLen + 1]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)+1))
	hdr[8] = kind
	crc := crc32.Update(crc32.Checksum(hdr[8:9], crcTable), crcTable, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// beginRecord reserves a frame header plus kind byte on buf, so a binary
// body can be appended in place — no intermediate payload slice. The caller
// must finish the frame with finishRecord, passing the returned start offset.
//
//dtn:hotpath
func beginRecord(buf []byte, kind uint8) ([]byte, int) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0, kind)
	return buf, start
}

// finishRecord back-patches the length and CRC of the frame opened at start,
// enforcing the same encode-side size limit as appendRecord.
//
//dtn:hotpath
func finishRecord(buf []byte, start int) ([]byte, error) {
	body := buf[start+recordHeaderLen:]
	if uint64(len(body)) > uint64(maxRecordLen) {
		return nil, recordTooLargeError(body[0], len(body)-1)
	}
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.Checksum(body, crcTable))
	return buf, nil
}

// appendBatchRecord frames one journaled mutation batch as a binary record,
// appending straight into buf — the append hot path's zero-allocation writer.
//
//dtn:hotpath
func appendBatchRecord(buf []byte, muts []replica.Mutation) ([]byte, error) {
	buf, start := beginRecord(buf, recBatchBin)
	buf, err := wire.AppendMutations(buf, muts) //lint:allow transientleak -- MutPut snapshots persist to this host's own WAL: a restart restores the same host, so its per-copy transient state legitimately survives (DESIGN.md §10)
	if err != nil {
		return nil, err
	}
	return finishRecord(buf, start)
}

// recordTooLargeError formats the encode-side limit violation; it lives off
// the hot path because the happy path never reaches it.
func recordTooLargeError(kind uint8, payloadLen int) error {
	return fmt.Errorf("%w: kind %d payload is %d bytes (max %d)",
		errRecordTooLarge, kind, payloadLen, maxRecordLen-1)
}

// appendMetaRecord frames a walMeta as a binary record.
func appendMetaRecord(buf []byte, m walMeta) ([]byte, error) {
	buf, start := beginRecord(buf, recMetaBin)
	buf = append(buf, wire.CodecVersion)
	buf = wire.AppendString(buf, string(m.ID))
	buf = wire.AppendUvarint(buf, m.Seq)
	buf = wire.AppendStrings(buf, m.Own)
	// Nil FilterAddrs means "the filter is not an address filter and survives
	// restarts via configuration" — distinct from an empty address filter, so
	// the nil-aware encoding is load-bearing here.
	buf = wire.AppendStrings(buf, m.FilterAddrs)
	buf = wire.AppendBytes(buf, m.Knowledge)
	buf = wire.AppendUvarint(buf, m.NextArrival)
	buf = wire.AppendBytes(buf, m.PolicyState)
	buf = wire.AppendUvarint(buf, m.Epoch)
	return finishRecord(buf, start)
}

// appendPutRecord frames one stored-entry snapshot as a binary record
// (segment files).
func appendPutRecord(buf []byte, e *store.EntrySnapshot) ([]byte, error) {
	buf, start := beginRecord(buf, recPutBin)
	buf = append(buf, wire.CodecVersion)
	//lint:allow transientleak -- WAL records restore the same host after a crash, so per-copy transient state (spray allowances, hop budgets) legitimately survives; nothing here crosses to another replica
	buf = wire.AppendEntrySnapshot(buf, e)
	return finishRecord(buf, start)
}

// appendRemoveRecord frames one removed item ID as a binary record
// (segment files).
func appendRemoveRecord(buf []byte, id item.ID) ([]byte, error) {
	buf, start := beginRecord(buf, recRemoveBin)
	buf = append(buf, wire.CodecVersion)
	buf = wire.AppendItemID(buf, id)
	return finishRecord(buf, start)
}

// encodeRecord gobs body and frames it as one legacy record of the given
// kind. Current builds no longer write gob records; this writer remains so
// the mixed-encoding recovery tests can produce byte-authentic old-format
// logs and segments.
func encodeRecord(kind uint8, body any) ([]byte, error) {
	var payload bytes.Buffer
	//lint:allow transientleak -- WAL records restore the same host after a crash, so per-copy transient state (spray allowances, hop budgets) legitimately survives; nothing here crosses to another replica
	if err := gob.NewEncoder(&payload).Encode(body); err != nil {
		return nil, fmt.Errorf("wal: encode record kind %d: %w", kind, err)
	}
	return appendRecord(nil, kind, payload.Bytes())
}

// record is one decoded frame.
type record struct {
	kind    uint8
	payload []byte
}

// readRecord parses the frame at data[off:]. ok is false when the bytes at
// off cannot be a complete, checksum-valid frame — the caller decides
// whether that is a truncatable tail (live log) or corruption (segment).
//
//dtn:hotpath
func readRecord(data []byte, off int) (rec record, next int, ok bool) {
	if off < 0 || len(data)-off < recordHeaderLen {
		return record{}, 0, false
	}
	length := binary.LittleEndian.Uint32(data[off : off+4])
	if length == 0 || length > maxRecordLen || int(length) > len(data)-off-recordHeaderLen {
		return record{}, 0, false
	}
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	body := data[off+recordHeaderLen : off+recordHeaderLen+int(length)]
	if crc32.Checksum(body, crcTable) != crc {
		return record{}, 0, false
	}
	return record{kind: body[0], payload: body[1:]}, off + recordHeaderLen + int(length), true
}

// decodeBody gob-decodes a legacy record payload into out.
func decodeBody(payload []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return nil
}

// checkCodecVersion strips and validates the leading codec-version byte of a
// binary record payload.
func checkCodecVersion(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: empty binary payload", errCorrupt)
	}
	if payload[0] != wire.CodecVersion {
		return nil, fmt.Errorf("%w: codec version %d, want %d", errCorrupt, payload[0], wire.CodecVersion)
	}
	return payload[1:], nil
}

// decodeMeta, decodeBatch, decodePut, decodeRemove decode the typed bodies,
// dispatching on the record kind between the legacy gob and the binary
// layouts.
func decodeMeta(rec record) (walMeta, error) {
	var m walMeta
	if rec.kind == recMeta {
		err := decodeBody(rec.payload, &m)
		return m, err
	}
	body, err := checkCodecVersion(rec.payload)
	if err != nil {
		return m, err
	}
	d := wire.NewDecoder(body)
	m.ID = vclock.ReplicaID(d.String())
	m.Seq = d.Uvarint()
	m.Own = d.Strings()
	m.FilterAddrs = d.Strings()
	m.Knowledge = d.BytesCopy()
	m.NextArrival = d.Uvarint()
	m.PolicyState = d.BytesCopy()
	m.Epoch = d.Uvarint()
	if err := d.Finish(); err != nil {
		return m, fmt.Errorf("%w: meta: %v", errCorrupt, err)
	}
	return m, nil
}

func decodeBatch(rec record) ([]replica.Mutation, error) {
	if rec.kind == recBatch {
		var b []replica.Mutation
		err := decodeBody(rec.payload, &b)
		return b, err
	}
	muts, err := wire.DecodeMutations(rec.payload)
	if err != nil {
		return nil, fmt.Errorf("%w: batch: %v", errCorrupt, err)
	}
	return muts, nil
}

func decodePut(rec record) (store.EntrySnapshot, error) {
	var e store.EntrySnapshot
	if rec.kind == recPut {
		err := decodeBody(rec.payload, &e)
		if err == nil && e.Item == nil {
			return e, fmt.Errorf("%w: put record without item", errCorrupt)
		}
		return e, err
	}
	body, err := checkCodecVersion(rec.payload)
	if err != nil {
		return e, err
	}
	d := wire.NewDecoder(body)
	es := d.EntrySnapshot()
	if err := d.Finish(); err != nil {
		return e, fmt.Errorf("%w: put: %v", errCorrupt, err)
	}
	if es == nil || es.Item == nil {
		return e, fmt.Errorf("%w: put record without item", errCorrupt)
	}
	return *es, nil
}

func decodeRemove(rec record) (item.ID, error) {
	if rec.kind == recRemove {
		var id item.ID
		err := decodeBody(rec.payload, &id)
		return id, err
	}
	body, err := checkCodecVersion(rec.payload)
	if err != nil {
		return item.ID{}, err
	}
	d := wire.NewDecoder(body)
	id := d.ItemID()
	if err := d.Finish(); err != nil {
		return item.ID{}, fmt.Errorf("%w: remove: %v", errCorrupt, err)
	}
	return id, nil
}
