package wal

// Tests for the binary record codec migration: the encode-side framing
// limit (an oversized record must fail the append, not poison recovery),
// and mixed-encoding recovery (logs and segments holding any mix of legacy
// gob records and binary records replay to identical state).

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"replidtn/internal/item"
)

// withMaxRecordLen lowers the frame limit for the duration of the test so
// over-limit records don't require materializing 64 MiB payloads.
func withMaxRecordLen(t *testing.T, limit uint32) {
	t.Helper()
	old := maxRecordLen
	maxRecordLen = limit
	t.Cleanup(func() { maxRecordLen = old })
}

// TestOversizedAppendFailsBeforeWrite is the regression test for the
// encode-side framing bug: a batch whose framed record would exceed
// maxRecordLen must poison the DB with a clear error BEFORE anything hits
// the log — previously the record was written and fsynced, then silently
// truncated as a "torn tail" at recovery, losing a durably-acknowledged
// mutation.
func TestOversizedAppendFailsBeforeWrite(t *testing.T) {
	withMaxRecordLen(t, 4<<10)
	fsys := NewMemFS()
	env := newScriptEnv(t)
	db, err := Open(fsys, Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(); !errors.Is(err, ErrNoState) {
		t.Fatalf("load: %v", err)
	}
	if err := db.Attach(env.r); err != nil {
		t.Fatalf("attach: %v", err)
	}

	// A small append under the lowered limit still works.
	env.r.CreateItem(item.Metadata{Destinations: []string{"alice"}}, []byte("small"))
	if err := db.Err(); err != nil {
		t.Fatalf("small append poisoned: %v", err)
	}
	before := mustSnapshot(t, env.r)
	logBefore, err := fsys.ReadFile(db.man.Log)
	if err != nil {
		t.Fatal(err)
	}

	// The oversized append must fail the persistence path with the framing
	// error, not write a frame recovery would reject.
	env.r.CreateItem(item.Metadata{Destinations: []string{"alice"}}, make([]byte, 8<<10))
	if err := db.Err(); !errors.Is(err, errRecordTooLarge) {
		t.Fatalf("db.Err() = %v, want errRecordTooLarge", err)
	}
	logAfter, err := fsys.ReadFile(db.man.Log)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(logBefore, logAfter) {
		t.Fatalf("oversized append wrote %d bytes to the log", len(logAfter)-len(logBefore))
	}

	// The log still replays cleanly — no torn tail, no corruption — to the
	// state as of the last successful append.
	db2, err := Open(fsys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := db2.Load()
	if err != nil {
		t.Fatalf("recovery after oversized append: %v", err)
	}
	st := newRecState()
	if truncated, err := st.replayLog(logAfter); err != nil || truncated {
		t.Fatalf("log replay: truncated=%v err=%v", truncated, err)
	}
	if d := DiffSnapshots(before, snap); d != "" {
		t.Errorf("recovered state diverged: %s", d)
	}
}

// TestEncodeRecordRejectsOversized pins the limit on both writers: the
// legacy gob framer and the binary back-patching framer.
func TestEncodeRecordRejectsOversized(t *testing.T) {
	withMaxRecordLen(t, 64)
	if _, err := encodeRecord(recMeta, walMeta{ID: "x", PolicyState: make([]byte, 128)}); !errors.Is(err, errRecordTooLarge) {
		t.Errorf("encodeRecord: err = %v, want errRecordTooLarge", err)
	}
	if _, err := appendRecord(nil, recBatch, make([]byte, 65)); !errors.Is(err, errRecordTooLarge) {
		t.Errorf("appendRecord: err = %v, want errRecordTooLarge", err)
	}
	if _, err := appendMetaRecord(nil, walMeta{ID: "x", PolicyState: make([]byte, 128)}); !errors.Is(err, errRecordTooLarge) {
		t.Errorf("appendMetaRecord: err = %v, want errRecordTooLarge", err)
	}
	// At the limit exactly: fine.
	if _, err := appendRecord(nil, recBatch, make([]byte, 63)); err != nil {
		t.Errorf("appendRecord at limit: %v", err)
	}
}

// transcodeLog rewrites binary records as legacy gob records. Every
// legacyEvery-th record (starting with the first) is transcoded; the rest
// stay binary, so legacyEvery=1 yields a pure old-format log and larger
// values an interleaved one.
func transcodeLog(t testing.TB, data []byte, legacyEvery int) []byte {
	t.Helper()
	var out []byte
	idx, off := 0, 0
	for off < len(data) {
		rec, next, ok := readRecord(data, off)
		if !ok {
			t.Fatalf("transcode: invalid record at offset %d", off)
		}
		if idx%legacyEvery != 0 {
			out = append(out, data[off:next]...)
			idx++
			off = next
			continue
		}
		var frame []byte
		var err error
		switch rec.kind {
		case recMetaBin:
			m, derr := decodeMeta(rec)
			if derr != nil {
				t.Fatalf("transcode meta: %v", derr)
			}
			frame, err = encodeRecord(recMeta, m)
		case recBatchBin:
			muts, derr := decodeBatch(rec)
			if derr != nil {
				t.Fatalf("transcode batch: %v", derr)
			}
			frame, err = encodeRecord(recBatch, muts)
		case recPutBin:
			e, derr := decodePut(rec)
			if derr != nil {
				t.Fatalf("transcode put: %v", derr)
			}
			frame, err = encodeRecord(recPut, &e)
		case recRemoveBin:
			id, derr := decodeRemove(rec)
			if derr != nil {
				t.Fatalf("transcode remove: %v", derr)
			}
			frame, err = encodeRecord(recRemove, id)
		default:
			out = append(out, data[off:next]...)
			idx++
			off = next
			continue
		}
		if err != nil {
			t.Fatalf("transcode encode: %v", err)
		}
		out = append(out, frame...)
		idx++
		off = next
	}
	return out
}

// TestMixedEncodingLogReplay proves recovery reads old-format (gob),
// new-format (binary), and interleaved logs to identical state — the
// property that lets existing logs replay across the codec migration.
func TestMixedEncodingLogReplay(t *testing.T) {
	binaryLog := buildLogBytes(t)
	st := newRecState()
	if _, err := st.replayLog(binaryLog); err != nil {
		t.Fatalf("binary log: %v", err)
	}
	want, err := st.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for name, every := range map[string]int{"all-gob": 1, "alternating": 2, "sparse-gob": 3} {
		t.Run(name, func(t *testing.T) {
			mixed := transcodeLog(t, binaryLog, every)
			st := newRecState()
			if truncated, err := st.replayLog(mixed); err != nil || truncated {
				t.Fatalf("mixed log: truncated=%v err=%v", truncated, err)
			}
			got, err := st.snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if d := DiffSnapshots(want, got); d != "" {
				t.Errorf("mixed-encoding replay diverged: %s", d)
			}
		})
	}
}

// buildSegmentBytes runs the scripted workload with aggressive flushing and
// returns the bytes of a manifest segment.
func buildSegmentBytes(t *testing.T) []byte {
	t.Helper()
	fsys := NewMemFS()
	env := newScriptEnv(t)
	db, err := Open(fsys, Options{FlushEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load(); !errors.Is(err, ErrNoState) {
		t.Fatalf("load: %v", err)
	}
	if err := db.Attach(env.r); err != nil {
		t.Fatalf("attach: %v", err)
	}
	env.runScript(0, scriptSteps)
	if err := db.Err(); err != nil {
		t.Fatalf("workload poisoned: %v", err)
	}
	man, ok, err := readManifest(fsys)
	if err != nil || !ok || len(man.Segments) == 0 {
		t.Fatalf("manifest: ok=%v err=%v segments=%d", ok, err, len(man.Segments))
	}
	data, err := fsys.ReadFile(man.Segments[len(man.Segments)-1])
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestMixedEncodingSegmentReplay is the segment-side counterpart: a segment
// holding gob records (or a mix) replays to the same state as its binary
// form, under the segment reader's strict personality.
func TestMixedEncodingSegmentReplay(t *testing.T) {
	binarySeg := buildSegmentBytes(t)
	st := newRecState()
	if err := st.replaySegment(binarySeg); err != nil {
		t.Fatalf("binary segment: %v", err)
	}
	want, err := st.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for name, every := range map[string]int{"all-gob": 1, "alternating": 2} {
		t.Run(name, func(t *testing.T) {
			mixed := transcodeLog(t, binarySeg, every)
			st := newRecState()
			if err := st.replaySegment(mixed); err != nil {
				t.Fatalf("mixed segment: %v", err)
			}
			got, err := st.snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if d := DiffSnapshots(want, got); d != "" {
				t.Errorf("mixed-encoding segment replay diverged: %s", d)
			}
		})
	}
}

// TestBinaryRecordsSmallerThanGob sanity-checks the migration's point: the
// binary form of a real workload's log is meaningfully smaller than gob's.
func TestBinaryRecordsSmallerThanGob(t *testing.T) {
	binaryLog := buildLogBytes(t)
	gobLog := transcodeLog(t, binaryLog, 1)
	if len(binaryLog) >= len(gobLog) {
		t.Errorf("binary log %d B, gob log %d B — no win", len(binaryLog), len(gobLog))
	}
	t.Logf("log bytes: binary %d, gob %d (%.1f%%)", len(binaryLog), len(gobLog),
		100*float64(len(binaryLog))/float64(len(gobLog)))
}

// TestCorruptBinaryRecordFailsLoudly pins the reader personality for the
// new kinds: a CRC-valid frame with a malformed binary body is corruption,
// not a truncatable tail (the CRC passed, so the frame was fully written).
func TestCorruptBinaryRecordFailsLoudly(t *testing.T) {
	valid := buildLogBytes(t)
	// Find a binary batch record, truncate its body by one byte, and re-frame
	// it so the CRC still validates: the record now decodes as a frame but
	// its body is malformed.
	off := 0
	var badFrame []byte
	for off < len(valid) {
		rec, next, ok := readRecord(valid, off)
		if !ok {
			t.Fatalf("invalid record at offset %d", off)
		}
		if rec.kind == recBatchBin {
			var err error
			badFrame, err = appendRecord(nil, rec.kind, rec.payload[:len(rec.payload)-1])
			if err != nil {
				t.Fatal(err)
			}
			break
		}
		off = next
	}
	if badFrame == nil {
		t.Fatal("no binary batch record in scripted log")
	}
	bad := append(append([]byte(nil), valid...), badFrame...)
	st := newRecState()
	if _, err := st.replayLog(bad); err == nil {
		t.Error("log reader replayed a malformed binary record")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("log reader error not marked corrupt: %v", err)
	}
}
