package wal

import (
	"errors"
	"strings"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
)

// openAttached opens a DB on fsys, loads (tolerating first boot), restores
// into a fresh replica built by build, and attaches. It returns both.
func openAttached(t *testing.T, fsys FS, opts Options, build func() *replica.Replica) (*DB, *replica.Replica) {
	t.Helper()
	db, err := Open(fsys, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	snap, err := db.Load()
	r := build()
	switch {
	case errors.Is(err, ErrNoState):
	case err != nil:
		t.Fatalf("load: %v", err)
	default:
		if err := r.RestoreSnapshot(snap); err != nil {
			t.Fatalf("restore: %v", err)
		}
	}
	if err := db.Attach(r); err != nil {
		t.Fatalf("attach: %v", err)
	}
	return db, r
}

func TestFreshLoadReportsNoState(t *testing.T) {
	db, err := Open(NewMemFS(), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := db.Load(); !errors.Is(err, ErrNoState) {
		t.Fatalf("Load on fresh dir = %v, want ErrNoState", err)
	}
}

func TestAttachRequiresLoad(t *testing.T) {
	fsys := NewMemFS()
	env := newScriptEnv(t)
	db, _ := openAttached(t, fsys, Options{}, func() *replica.Replica { return env.r })
	env.runScript(0, 4)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db2, err := Open(fsys, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := db2.Attach(env.r); err == nil || !strings.Contains(err.Error(), "Load first") {
		t.Fatalf("Attach without Load = %v, want load-first error", err)
	}
}

// TestRoundTripAfterCrash is the core recovery property: run the scripted
// workload, crash at the end (dropping everything unsynced), reopen, and the
// recovered snapshot must equal the live replica's final state — every
// append was fsynced before its mutating call returned, so nothing was lost.
func TestRoundTripAfterCrash(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"no-auto-flush", Options{FlushEvery: -1}},
		{"flush-every-3", Options{FlushEvery: 3}},
		{"flush-and-compact", Options{FlushEvery: 2, CompactAt: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fsys := NewMemFS()
			env := newScriptEnv(t)
			db, _ := openAttached(t, fsys, tc.opts, func() *replica.Replica { return env.r })
			env.runScript(0, scriptSteps)
			if err := db.Err(); err != nil {
				t.Fatalf("db poisoned: %v", err)
			}
			want := mustSnapshot(t, env.r)

			fsys.Crash()
			db2, err := Open(fsys, tc.opts)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			got, err := db2.Load()
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if d := DiffSnapshots(want, got); d != "" {
				t.Fatalf("recovered state differs: %s", d)
			}
		})
	}
}

// TestRecoveredReplicaKeepsWorking proves the recovered state is live, not
// just equal: restore it, attach a new DB generation, keep mutating, crash
// again, and recover the extended state.
func TestRecoveredReplicaKeepsWorking(t *testing.T) {
	fsys := NewMemFS()
	opts := Options{FlushEvery: 3, CompactAt: 2}
	env := newScriptEnv(t)
	_, _ = openAttached(t, fsys, opts, func() *replica.Replica { return env.r })
	env.runScript(0, scriptSteps/2)

	fsys.Crash()
	env2 := newScriptEnv(t)
	_, r2 := openAttached(t, fsys, opts, func() *replica.Replica { return env2.r })
	env2.runScript(scriptSteps/2, scriptSteps)
	want := mustSnapshot(t, r2)

	fsys.Crash()
	db3, err := Open(fsys, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	got, err := db3.Load()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if d := DiffSnapshots(want, got); d != "" {
		t.Fatalf("recovered state differs: %s", d)
	}
	if got.Epoch != want.Epoch {
		t.Fatalf("epoch %d, want %d", got.Epoch, want.Epoch)
	}
}

// TestCleanCloseRecovers: Close checkpoints, so a clean shutdown recovers
// exactly even with every unsynced byte dropped afterwards.
func TestCleanCloseRecovers(t *testing.T) {
	fsys := NewMemFS()
	env := newScriptEnv(t)
	db, _ := openAttached(t, fsys, Options{FlushEvery: -1}, func() *replica.Replica { return env.r })
	env.runScript(0, 10)
	want := mustSnapshot(t, env.r)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	fsys.Crash()

	db2, err := Open(fsys, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := db2.Load()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if d := DiffSnapshots(want, got); d != "" {
		t.Fatalf("recovered state differs: %s", d)
	}
}

// TestTornTailTruncated: a crash that preserves half of an unsynced record
// (KeepHalfTail) recovers to the last durable state and counts the
// truncation, instead of failing or replaying garbage.
func TestTornTailTruncated(t *testing.T) {
	fsys := NewMemFS()
	fsys.SetCrashMode(KeepHalfTail)
	env := newScriptEnv(t)
	db, _ := openAttached(t, fsys, Options{FlushEvery: -1}, func() *replica.Replica { return env.r })
	env.runScript(0, 6)
	want := mustSnapshot(t, env.r)

	// Start one more append and fail its fsync: the write lands, the sync
	// does not, and KeepHalfTail leaves half the record on disk.
	fsys.SetFailAfter(1) // the write succeeds, the sync fails
	env.r.CreateItem(item.Metadata{}, []byte("doomed"))
	if db.Err() == nil {
		t.Fatal("append survived the injected sync failure")
	}
	fsys.Crash()

	m := &obs.WALMetrics{}
	db2, err := Open(fsys, Options{Metrics: m})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := db2.Load()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if d := DiffSnapshots(want, got); d != "" {
		t.Fatalf("recovered state differs: %s", d)
	}
	if m.TruncatedTails.Value() != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", m.TruncatedTails.Value())
	}
}

// TestSegmentCorruptionFailsLoudly: damage inside a manifest-referenced
// segment is not a truncatable tail — recovery must refuse.
func TestSegmentCorruptionFailsLoudly(t *testing.T) {
	fsys := NewMemFS()
	env := newScriptEnv(t)
	db, _ := openAttached(t, fsys, Options{FlushEvery: 2}, func() *replica.Replica { return env.r })
	env.runScript(0, 8)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	man, ok, err := readManifest(fsys)
	if err != nil || !ok {
		t.Fatalf("manifest: %v ok=%v", err, ok)
	}
	seg := man.Segments[0]
	data, err := fsys.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[len(data)/2] ^= 0x40
	if err := rewrite(fsys, seg, data); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	db2, err := Open(fsys, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := db2.Load(); !errors.Is(err, errCorrupt) {
		t.Fatalf("Load over corrupt segment = %v, want errCorrupt", err)
	}
}

// TestUnreferencedFilesIgnored: strays from interrupted flushes (files not
// named by the manifest) do not confuse recovery, and generation numbering
// skips past them.
func TestUnreferencedFilesIgnored(t *testing.T) {
	fsys := NewMemFS()
	env := newScriptEnv(t)
	db, _ := openAttached(t, fsys, Options{FlushEvery: -1}, func() *replica.Replica { return env.r })
	env.runScript(0, 6)
	want := mustSnapshot(t, env.r)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := rewrite(fsys, segName(90), []byte("stray")); err != nil {
		t.Fatalf("stray: %v", err)
	}
	if err := rewrite(fsys, logName(91), []byte("stray")); err != nil {
		t.Fatalf("stray: %v", err)
	}

	db2, err := Open(fsys, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := db2.Load()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if d := DiffSnapshots(want, got); d != "" {
		t.Fatalf("recovered state differs: %s", d)
	}
	if db2.segSeq != 91 || db2.logSeq != 92 {
		t.Fatalf("generation numbering segSeq=%d logSeq=%d, want 91/92", db2.segSeq, db2.logSeq)
	}
}

// TestCompactionBoundsSegments: a long run with aggressive flushing keeps
// the manifest at or below the compaction bound, and removed entries stay
// removed through merges.
func TestCompactionBoundsSegments(t *testing.T) {
	fsys := NewMemFS()
	m := &obs.WALMetrics{}
	env := newScriptEnv(t)
	db, _ := openAttached(t, fsys, Options{FlushEvery: 1, CompactAt: 2, Metrics: m}, func() *replica.Replica { return env.r })
	env.runScript(0, scriptSteps)
	if err := db.Err(); err != nil {
		t.Fatalf("db poisoned: %v", err)
	}
	if n := len(db.man.Segments); n > 3 {
		t.Fatalf("manifest holds %d segments, want <= 3 under CompactAt=2", n)
	}
	if m.Compactions.Value() == 0 {
		t.Fatal("no compactions under FlushEvery=1, CompactAt=2")
	}
	want := mustSnapshot(t, env.r)

	fsys.Crash()
	db2, err := Open(fsys, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := db2.Load()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if d := DiffSnapshots(want, got); d != "" {
		t.Fatalf("recovered state differs: %s", d)
	}
}

// TestOSFSRoundTrip runs the workload on the real filesystem.
func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys, err := NewOSFS(dir)
	if err != nil {
		t.Fatalf("osfs: %v", err)
	}
	env := newScriptEnv(t)
	db, _ := openAttached(t, fsys, Options{FlushEvery: 4, CompactAt: 2}, func() *replica.Replica { return env.r })
	env.runScript(0, scriptSteps)
	want := mustSnapshot(t, env.r)
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	fsys2, err := NewOSFS(dir)
	if err != nil {
		t.Fatalf("osfs: %v", err)
	}
	db2, err := Open(fsys2, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, err := db2.Load()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if d := DiffSnapshots(want, got); d != "" {
		t.Fatalf("recovered state differs: %s", d)
	}
}

// TestAppendMetrics sanity-checks the counters on the happy path.
func TestAppendMetrics(t *testing.T) {
	fsys := NewMemFS()
	m := &obs.WALMetrics{}
	env := newScriptEnv(t)
	_, _ = openAttached(t, fsys, Options{FlushEvery: 4, Metrics: m}, func() *replica.Replica { return env.r })
	env.runScript(0, scriptSteps)
	if m.Records.Value() == 0 || m.Bytes.Value() == 0 {
		t.Fatalf("no records/bytes counted: %+v", m.Snapshot())
	}
	if m.Flushes.Value() == 0 {
		t.Fatal("no flushes counted")
	}
	if m.Segments.Value() == 0 {
		t.Fatal("segments gauge unset")
	}
}

// rewrite replaces a MemFS/OSFS file's contents (test helper).
func rewrite(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.SyncDir()
}
