package wal

// The crash-point matrix: kill the WAL at EVERY filesystem durability
// operation it ever issues — mid-record writes, post-record/pre-sync,
// mid-flush, mid-compaction, mid-manifest-swap — under all three unsynced-
// tail behaviors, and prove recovery always lands exactly on a state the
// workload actually passed through, never behind the durable prefix and
// never past the crashed operation.
//
// Oracle. A counting pass runs the scripted workload uninjected and records
// (a) the total number of FS durability operations O and (b) the reference
// snapshot after every script step. Then, for each k in [0, O) and each
// crash mode, a fresh run injects a failure at operation k (every FS
// operation from k on fails — a process does not outlive its first failed
// fsync for long), crashes the filesystem, recovers, and checks:
//
//	recovered == ref[j] for some j, with completed(k) <= j <= completed(k)+1
//
// where completed(k) counts script steps that finished with the DB healthy.
// The +1 covers the crashed operation itself: its batch may have reached
// disk (KeepUnsynced) or not (DropUnsynced) — both are legal outcomes of a
// crash concurrent with a write, and WHICH one is visible is exactly what
// recovery may not get wrong. The lower bound is the durability guarantee:
// every mutating call that returned with a healthy DB was fsynced, so no
// crash mode may lose it.

import (
	"errors"
	"fmt"
	"testing"

	"replidtn/internal/replica"
)

// crashScriptOpts stresses every boundary: flush every 2 batches, compact
// at 2 segments, so the op sweep crosses record appends, flushes, manifest
// swaps, and compactions many times within one script.
var crashScriptOpts = Options{FlushEvery: 2, CompactAt: 2}

// countingRun executes the full script uninjected and returns the total FS
// op count and the reference snapshots: refs[i] is the state after step i-1
// (refs[0] is the fresh pre-attach state).
func countingRun(t *testing.T) (totalOps int, refs []*replica.Snapshot) {
	t.Helper()
	fsys := NewMemFS()
	env := newScriptEnv(t)
	refs = append(refs, mustSnapshot(t, env.r))
	db, _ := openAttached(t, fsys, crashScriptOpts, func() *replica.Replica { return env.r })
	for i := 0; i < scriptSteps; i++ {
		env.step(i)
		refs = append(refs, mustSnapshot(t, env.r))
	}
	if err := db.Err(); err != nil {
		t.Fatalf("counting run poisoned: %v", err)
	}
	return fsys.Ops(), refs
}

func TestCrashPointMatrix(t *testing.T) {
	totalOps, refs := countingRun(t)
	if totalOps < scriptSteps {
		t.Fatalf("suspicious op count %d", totalOps)
	}
	for _, mode := range []struct {
		name string
		mode CrashMode
	}{
		{"drop-unsynced", DropUnsynced},
		{"keep-unsynced", KeepUnsynced},
		{"keep-half-tail", KeepHalfTail},
	} {
		t.Run(mode.name, func(t *testing.T) {
			for k := 0; k < totalOps; k++ {
				runCrashPoint(t, k, mode.mode, refs)
			}
		})
	}
}

// runCrashPoint injects a failure at FS operation k, crashes, recovers, and
// checks the oracle.
func runCrashPoint(t *testing.T, k int, mode CrashMode, refs []*replica.Snapshot) {
	t.Helper()
	fsys := NewMemFS()
	fsys.SetCrashMode(mode)
	fsys.SetFailAfter(k)

	env := newScriptEnv(t)
	db, err := Open(fsys, crashScriptOpts)
	if err != nil {
		t.Fatalf("k=%d: open: %v", k, err)
	}
	if _, err := db.Load(); !errors.Is(err, ErrNoState) {
		t.Fatalf("k=%d: load: %v", k, err)
	}
	completed := 0
	if err := db.Attach(env.r); err == nil {
		for i := 0; i < scriptSteps; i++ {
			env.step(i)
			if db.Err() != nil {
				break
			}
			completed = i + 1
		}
	}
	// A real crash kills the process here; the injected-failure run above
	// only decided how far the workload got (completed) before dying.
	fsys.Crash()

	db2, err := Open(fsys, crashScriptOpts)
	if err != nil {
		t.Fatalf("k=%d mode=%v: reopen: %v", k, mode, err)
	}
	got, err := db2.Load()
	if errors.Is(err, ErrNoState) {
		// Nothing durable at all: legal only if the very first commit (the
		// attach checkpoint) never finished, i.e. no step completed.
		if completed != 0 {
			t.Fatalf("k=%d mode=%v: %d steps durable but recovery found no state", k, mode, completed)
		}
		return
	}
	if err != nil {
		t.Fatalf("k=%d mode=%v: recover: %v", k, mode, err)
	}

	for j := completed; j <= completed+1 && j < len(refs); j++ {
		if DiffSnapshots(refs[j], got) == "" {
			return
		}
	}
	t.Fatalf("k=%d mode=%v: recovered state matches neither ref[%d] nor ref[%d]: vs ref[%d]: %s",
		k, mode, completed, completed+1, completed, DiffSnapshots(refs[completed], got))
}

// TestCrashPointDoubleCrash re-runs a band of crash points, then continues
// the workload on the recovered state and crashes again mid-flight — the
// recover-from-a-recovery path (fresh log generation over inherited
// segments) that single-crash sweeps never exercise.
func TestCrashPointDoubleCrash(t *testing.T) {
	totalOps, _ := countingRun(t)
	// Sample a spread of first-crash points; sweeping the full cross
	// product would be quadratic in ops for little extra coverage.
	for k := 3; k < totalOps; k += 7 {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			fsys := NewMemFS()
			fsys.SetCrashMode(KeepHalfTail)
			fsys.SetFailAfter(k)
			env := newScriptEnv(t)
			db, err := Open(fsys, crashScriptOpts)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if _, err := db.Load(); !errors.Is(err, ErrNoState) {
				t.Fatalf("load: %v", err)
			}
			if err := db.Attach(env.r); err == nil {
				for i := 0; i < scriptSteps && db.Err() == nil; i++ {
					env.step(i)
				}
			}
			fsys.Crash()

			// Second life: recover, run the full script on the recovered
			// replica, verify exact recovery of the second life's end state.
			env2 := newScriptEnv(t)
			db2, r2 := openAttached(t, fsys, crashScriptOpts, func() *replica.Replica { return env2.r })
			env2.runScript(0, scriptSteps)
			if err := db2.Err(); err != nil {
				t.Fatalf("second life poisoned: %v", err)
			}
			want := mustSnapshot(t, r2)

			fsys.Crash()
			db3, err := Open(fsys, crashScriptOpts)
			if err != nil {
				t.Fatalf("third open: %v", err)
			}
			got, err := db3.Load()
			if err != nil {
				t.Fatalf("third recover: %v", err)
			}
			if d := DiffSnapshots(want, got); d != "" {
				t.Fatalf("second-life recovery differs: %s", d)
			}
		})
	}
}
