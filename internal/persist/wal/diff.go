package wal

import (
	"fmt"
	"reflect"
	"sort"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// DiffSnapshots reports the first semantic difference between two replica
// snapshots, or "" when they are equivalent. It exists for the recovery
// test suites (the crash-point matrix here, the WAL-vs-snapshot
// differential in internal/persist, the emulator's backend differential):
// raw gob bytes cannot be compared — map iteration order varies — and
// reflect.DeepEqual over-distinguishes nil from empty slices, so equality
// is field-wise: entries as a set keyed by item ID, knowledge semantically,
// address lists as sorted sets.
func DiffSnapshots(a, b *replica.Snapshot) string {
	if a.ID != b.ID {
		return fmt.Sprintf("ID %q vs %q", a.ID, b.ID)
	}
	if a.Seq != b.Seq {
		return fmt.Sprintf("Seq %d vs %d", a.Seq, b.Seq)
	}
	if a.NextArrival != b.NextArrival {
		return fmt.Sprintf("NextArrival %d vs %d", a.NextArrival, b.NextArrival)
	}
	if a.Epoch != b.Epoch {
		return fmt.Sprintf("Epoch %d vs %d", a.Epoch, b.Epoch)
	}
	if !sameStrings(a.OwnAddresses, b.OwnAddresses) {
		return fmt.Sprintf("OwnAddresses %v vs %v", a.OwnAddresses, b.OwnAddresses)
	}
	if !sameStrings(a.FilterAddresses, b.FilterAddresses) {
		return fmt.Sprintf("FilterAddresses %v vs %v", a.FilterAddresses, b.FilterAddresses)
	}
	ka, err := knowledgeOf(a.Knowledge)
	if err != nil {
		return fmt.Sprintf("left knowledge: %v", err)
	}
	kb, err := knowledgeOf(b.Knowledge)
	if err != nil {
		return fmt.Sprintf("right knowledge: %v", err)
	}
	if !ka.Equal(kb) {
		return fmt.Sprintf("Knowledge %s vs %s", ka, kb)
	}
	if len(a.PolicyState) != len(b.PolicyState) || string(a.PolicyState) != string(b.PolicyState) {
		return fmt.Sprintf("PolicyState %d bytes vs %d bytes", len(a.PolicyState), len(b.PolicyState))
	}
	ea, eb := entryMap(a.Entries), entryMap(b.Entries)
	if len(ea) != len(eb) {
		return fmt.Sprintf("entry count %d vs %d", len(ea), len(eb))
	}
	for id, x := range ea {
		y, ok := eb[id]
		if !ok {
			return fmt.Sprintf("entry %s missing on one side", id)
		}
		if d := diffEntries(x, y); d != "" {
			return fmt.Sprintf("entry %s: %s", id, d)
		}
	}
	return ""
}

func knowledgeOf(b []byte) (*vclock.Knowledge, error) {
	k := vclock.NewKnowledge()
	if err := k.UnmarshalBinary(b); err != nil {
		return nil, err
	}
	return k, nil
}

func entryMap(entries []store.EntrySnapshot) map[item.ID]store.EntrySnapshot {
	m := make(map[item.ID]store.EntrySnapshot, len(entries))
	for _, e := range entries {
		m[e.Item.ID] = e
	}
	return m
}

func diffEntries(a, b store.EntrySnapshot) string {
	if a.Relay != b.Relay || a.Local != b.Local || a.Arrival != b.Arrival {
		return fmt.Sprintf("flags/arrival (%v,%v,%d) vs (%v,%v,%d)", a.Relay, a.Local, a.Arrival, b.Relay, b.Local, b.Arrival)
	}
	if !sameTransients(a.Transient, b.Transient) {
		return fmt.Sprintf("transient %v vs %v", a.Transient, b.Transient)
	}
	x, y := a.Item, b.Item
	if x.ID != y.ID || x.Version != y.Version || x.Deleted != y.Deleted {
		return "item header differs"
	}
	if len(x.Prior) != len(y.Prior) {
		return fmt.Sprintf("prior %v vs %v", x.Prior, y.Prior)
	}
	for i := range x.Prior {
		if x.Prior[i] != y.Prior[i] {
			return fmt.Sprintf("prior %v vs %v", x.Prior, y.Prior)
		}
	}
	if string(x.Payload) != string(y.Payload) {
		return fmt.Sprintf("payload %q vs %q", x.Payload, y.Payload)
	}
	if !reflect.DeepEqual(normalizeMeta(x.Meta), normalizeMeta(y.Meta)) {
		return fmt.Sprintf("meta %+v vs %+v", x.Meta, y.Meta)
	}
	return ""
}

func normalizeMeta(m item.Metadata) item.Metadata {
	if len(m.Destinations) == 0 {
		m.Destinations = nil
	}
	if len(m.Attrs) == 0 {
		m.Attrs = nil
	}
	return m
}

// sameStrings compares string slices as sets, treating nil and empty alike.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func sameTransients(a, b item.Transient) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
