package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the flat, single-directory filesystem a DB runs on. Two
// implementations exist: OSFS for real deployments and MemFS for the
// deterministic emulator and the crash-point test matrix. The interface is
// deliberately shaped around the durability operations the WAL's correctness
// argument relies on — per-file Sync and whole-directory SyncDir — so a
// simulated crash can be exact about which of them had happened.
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// ReadFile returns the full contents of name. A missing file is
	// reported with an error satisfying errors.Is(err, fs.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's file. Durable only
	// after SyncDir, like the data blocks of a created file are only
	// durable after its Sync.
	Rename(oldname, newname string) error
	// Remove deletes name; missing files are not an error (removal is
	// always cleanup of files the manifest no longer references).
	Remove(name string) error
	// SyncDir makes the directory's current name→file mapping durable:
	// creations, renames, and removals issued before it survive a crash.
	SyncDir() error
	// List returns the directory's file names in sorted order.
	List() ([]string, error)
}

// File is a writable file handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync makes every byte written so far durable.
	Sync() error
	Close() error
}

// OSFS is the FS over a real directory. Its SyncDir fsyncs the directory
// file descriptor, which is what actually commits renames on Linux
// filesystems (see the persist.Save regression this package grew out of).
type OSFS struct {
	Dir string
}

// NewOSFS creates the directory (and parents) if needed and returns an FS
// rooted there.
func NewOSFS(dir string) (*OSFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir %s: %w", dir, err)
	}
	return &OSFS{Dir: dir}, nil
}

func (o *OSFS) path(name string) string { return filepath.Join(o.Dir, name) }

// Create implements FS.
func (o *OSFS) Create(name string) (File, error) {
	return os.Create(o.path(name))
}

// ReadFile implements FS.
func (o *OSFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(o.path(name))
}

// Rename implements FS.
func (o *OSFS) Rename(oldname, newname string) error {
	return os.Rename(o.path(oldname), o.path(newname))
}

// Remove implements FS.
func (o *OSFS) Remove(name string) error {
	err := os.Remove(o.path(name))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// SyncDir implements FS: fsync the directory descriptor.
func (o *OSFS) SyncDir() error {
	d, err := os.Open(o.Dir)
	if err != nil {
		return fmt.Errorf("wal: open dir %s: %w", o.Dir, err)
	}
	if err := d.Sync(); err != nil {
		d.Close() //lint:allow errdiscard -- the sync error already aborts the commit; the close failure on a read-only directory handle adds nothing
		return fmt.Errorf("wal: sync dir %s: %w", o.Dir, err)
	}
	return d.Close()
}

// List implements FS.
func (o *OSFS) List() ([]string, error) {
	ents, err := os.ReadDir(o.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// CrashMode selects what happens to a file's unsynced byte tail when a MemFS
// crashes. Real disks land anywhere on this spectrum, which is why the
// crash-point matrix runs every scenario under all three.
type CrashMode int

const (
	// DropUnsynced loses every byte past the last Sync (write-back cache
	// fully lost). The strictest mode: recovery sees only what the WAL's
	// fsync discipline explicitly made durable.
	DropUnsynced CrashMode = iota
	// KeepUnsynced retains unsynced bytes (the cache happened to hit disk).
	// Recovery must cope with MORE data than was promised durable.
	KeepUnsynced
	// KeepHalfTail retains half of the unsynced tail, rounding down — a torn
	// write mid-record. Recovery must detect and truncate the fragment.
	KeepHalfTail
)

// errInjected marks failures injected by a MemFS crash point; once armed,
// every subsequent durability operation fails with it, modeling a process
// that dies at the first failed syscall.
var errInjected = errors.New("wal: injected crash")

// memFile is one MemFS file: its live contents plus the durable watermark.
type memFile struct {
	data   []byte
	synced int
}

// MemFS is an in-memory FS with explicit durability semantics, for the
// emulator's deterministic crash-restart and the crash-point test matrix:
//
//   - File bytes are durable only up to the file's last Sync.
//   - Directory entries (creations, renames, removals) are durable only as
//     of the last SyncDir.
//
// Crash discards everything else according to the configured CrashMode,
// leaving exactly the state a machine reboot would. SetFailAfter arms a
// deterministic crash point: the n-th subsequent durability operation (and
// every one after it) fails with an injected error, and a Write that fails
// first applies a partial prefix — a torn in-flight write.
//
// All methods are safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	live    map[string]*memFile
	durable map[string]string // durable dir entry -> key into files at last SyncDir
	files   map[string]*memFile
	mode    CrashMode

	ops     int // total durability operations issued
	opsLeft int // operations until injected failure; <0 disarmed
}

// NewMemFS returns an empty MemFS with DropUnsynced crash semantics.
func NewMemFS() *MemFS {
	return &MemFS{
		live:    make(map[string]*memFile),
		files:   make(map[string]*memFile),
		opsLeft: -1,
	}
}

// SetCrashMode selects the unsynced-tail behavior of the next Crash.
func (m *MemFS) SetCrashMode(mode CrashMode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mode = mode
}

// SetFailAfter arms the injected crash point: the next n durability
// operations (writes, syncs, dir syncs, renames, removes, creates) succeed
// and every one after them fails. n < 0 disarms.
func (m *MemFS) SetFailAfter(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.opsLeft = n
}

// Ops returns how many durability operations have been issued so far; the
// crash matrix uses a counting pass to size its injection sweep.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// step consumes one operation budget slot; it reports false once the
// injected failure point is reached. Callers hold m.mu.
func (m *MemFS) step() bool {
	m.ops++
	if m.opsLeft < 0 {
		return true
	}
	if m.opsLeft == 0 {
		return false
	}
	m.opsLeft--
	return true
}

// Crash simulates a machine crash: live state is rebuilt from the durable
// directory mapping, and each surviving file keeps its synced prefix plus
// whatever the CrashMode says about the unsynced tail. The injected failure
// point is disarmed.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	fresh := make(map[string]*memFile, len(m.durable))
	files := make(map[string]*memFile, len(m.durable))
	for name, key := range m.durable {
		f := m.files[key]
		if f == nil {
			continue
		}
		keep := f.synced
		switch m.mode {
		case KeepUnsynced:
			keep = len(f.data)
		case KeepHalfTail:
			keep = f.synced + (len(f.data)-f.synced)/2
		}
		nf := &memFile{data: append([]byte(nil), f.data[:keep]...)}
		nf.synced = len(nf.data)
		fresh[name] = nf
		files[name] = nf
	}
	m.live = fresh
	m.files = files
	m.durable = make(map[string]string, len(fresh))
	for name := range fresh {
		m.durable[name] = name
	}
	m.opsLeft = -1
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.step() {
		return nil, fmt.Errorf("wal: create %s: %w", name, errInjected)
	}
	f := &memFile{}
	m.live[name] = f
	m.files[m.fileKey(name)] = f
	return &memHandle{fs: m, f: f}, nil
}

// fileKey returns an unused key for a new file object under name. Live names
// can be reused (create after remove) while the durable mapping still
// references the old object, so keys are disambiguated with a generation.
func (m *MemFS) fileKey(name string) string {
	key := name
	for i := 0; ; i++ {
		if _, taken := m.files[key]; !taken {
			return key
		}
		key = fmt.Sprintf("%s#%d", name, i)
	}
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.live[name]
	if !ok {
		return nil, fmt.Errorf("wal: read %s: %w", name, fs.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.step() {
		return fmt.Errorf("wal: rename %s: %w", oldname, errInjected)
	}
	f, ok := m.live[oldname]
	if !ok {
		return fmt.Errorf("wal: rename %s: %w", oldname, fs.ErrNotExist)
	}
	m.live[newname] = f
	delete(m.live, oldname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.step() {
		return fmt.Errorf("wal: remove %s: %w", name, errInjected)
	}
	delete(m.live, name)
	return nil
}

// SyncDir implements FS: the live name→file mapping becomes the durable one.
func (m *MemFS) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.step() {
		return fmt.Errorf("wal: sync dir: %w", errInjected)
	}
	m.durable = make(map[string]string, len(m.live))
	for name, f := range m.live {
		for key, cand := range m.files {
			if cand == f {
				m.durable[name] = key
				break
			}
		}
	}
	return nil
}

// List implements FS.
func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.live))
	for name := range m.live {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// memHandle is a write handle into a MemFS file.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	closed bool
}

// Write implements File. An injected failure applies a half-length prefix
// before reporting the error — the torn in-flight write real crashes leave.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("wal: write: %w", fs.ErrClosed)
	}
	if !h.fs.step() {
		n := len(p) / 2
		h.f.data = append(h.f.data, p[:n]...)
		return n, fmt.Errorf("wal: write: %w", errInjected)
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync implements File: the durable watermark advances to the current length.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("wal: sync: %w", fs.ErrClosed)
	}
	if !h.fs.step() {
		return fmt.Errorf("wal: sync: %w", errInjected)
	}
	h.f.synced = len(h.f.data)
	return nil
}

// Close implements File.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// walFileName reports whether name looks like a generated DB file; List
// callers use it to ignore strays (editor droppings, temp files from other
// tools) when scavenging.
func walFileName(name string) bool {
	return name == manifestName || strings.HasPrefix(name, segPrefix) || strings.HasPrefix(name, logPrefix)
}
