// Package wal is the incremental persistence backend: an append-only
// write-ahead log of replica mutations with periodic memtable flushes into
// immutable segment files, tied together by an atomically-replaced manifest.
//
// Shape (the classic log-structured design, cf. ROADMAP item 2):
//
//   - Every journaled mutation batch is framed, appended to the live log,
//     and fsynced before the append returns — one record per batch, so a
//     torn tail can never split a batch (operation atomicity survives any
//     crash point).
//   - The same batches fold into an in-memory memtable: the delta (changed
//     entries, removed IDs, current knowledge and counters) since the last
//     flush. Persisting a mutation costs O(mutation), never O(store).
//   - Every FlushEvery batches the memtable is flushed: its delta becomes an
//     immutable segment file, the manifest atomically adopts the segment and
//     a fresh log generation, and the old log is deleted.
//   - When the manifest accumulates more than CompactAt segments they are
//     merged into one (replay, rewrite, swap) — reads stay bounded without
//     touching the live log.
//
// Recovery is replay(manifest segments, in order) + replay(log tail): the
// segments rebuild the flushed state, the log replays everything since. A
// torn or corrupt record at the log tail is truncated, not an error — it is
// precisely the in-flight write the crash interrupted, and everything before
// it was fsynced. The same damage inside a segment or before the log's last
// valid record is real corruption and fails recovery loudly.
//
// Durability contract: items, tombstones, knowledge, counters, and identity
// are durable the moment the mutating call returns (per-record fsync).
// Routing-policy state is durable as of the last flush, and in-place
// transient tweaks policies make to stored entries while serving a sync are
// volatile — both are forwarding hints whose loss can cost efficiency but
// never correctness (at-most-once is carried by the knowledge, which is
// journaled). See DESIGN.md §13.
package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"

	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
	"replidtn/internal/store"
	"replidtn/internal/vclock"
)

// ErrNoState is reported by Load when the directory holds no persisted
// state yet (first boot).
var ErrNoState = errors.New("wal: no persisted state")

// Options tunes a DB.
type Options struct {
	// Metrics mirrors WAL activity into observability counters; nil disables.
	Metrics *obs.WALMetrics
	// FlushEvery is the number of appended batches that triggers a memtable
	// flush (0 selects 256; negative disables automatic flushing — only
	// Checkpoint and Close flush).
	FlushEvery int
	// CompactAt is the segment count above which a flush triggers
	// compaction (0 selects 4).
	CompactAt int
}

// DB is one replica's WAL-backed durable state, rooted in a flat directory
// on an FS. Typical lifecycle:
//
//	db, _ := wal.Open(fsys, wal.Options{})
//	snap, err := db.Load()            // ErrNoState on first boot
//	// build the replica; RestoreSnapshot(snap) unless first boot
//	db.Attach(r)                      // checkpoint now, journal from here on
//	...
//	db.Close()                        // final checkpoint, detach
//
// All methods are safe for concurrent use. Append failures (disk full, I/O
// errors, injected crashes) poison the DB: persistence stops, the replica
// keeps serving, and Err reports the cause — the node operator decides
// whether a degraded-durability node should keep running.
type DB struct {
	fsys       FS
	metrics    *obs.WALMetrics
	flushEvery int
	compactAt  int

	mu      sync.Mutex
	man     manifest
	haveMan bool
	segSeq  uint64 // next segment generation
	logSeq  uint64 // next log generation
	log     File   // live log handle (nil until Attach)
	curLog  string
	mem     *memtable
	r       *replica.Replica
	loaded  bool
	err     error // sticky poison
	// buf is the append path's reusable frame scratch (guarded by mu): the
	// binary record codec appends into it, so a steady-state append allocates
	// nothing. Shrunk after unusually large batches (see maxScratchBytes).
	buf []byte
}

// maxScratchBytes caps the capacity db.buf retains between appends: one
// oversized batch (a multi-megabyte payload) must not pin its buffer for the
// life of the DB.
const maxScratchBytes = 4 << 20

// Open inspects the directory and returns a DB ready for Load/Attach. It
// writes nothing.
func Open(fsys FS, opts Options) (*DB, error) {
	db := &DB{
		fsys:       fsys,
		metrics:    opts.Metrics,
		flushEvery: opts.FlushEvery,
		compactAt:  opts.CompactAt,
	}
	if db.flushEvery == 0 {
		db.flushEvery = 256
	}
	if db.compactAt <= 0 {
		db.compactAt = 4
	}
	man, ok, err := readManifest(fsys)
	if err != nil {
		return nil, err
	}
	db.man, db.haveMan = man, ok
	// Continue generation numbering past every file present — including
	// strays a crashed flush left behind — so no name is ever reused.
	names, err := fsys.List()
	if err != nil {
		return nil, fmt.Errorf("wal: list dir: %w", err)
	}
	for _, name := range names {
		var n uint64
		if _, err := fmt.Sscanf(name, segPrefix+"%d.seg", &n); err == nil && n >= db.segSeq {
			db.segSeq = n + 1
		}
		if _, err := fmt.Sscanf(name, logPrefix+"%d.log", &n); err == nil && n >= db.logSeq {
			db.logSeq = n + 1
		}
	}
	return db, nil
}

// Err returns the sticky failure that poisoned the DB, or nil.
func (db *DB) Err() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.err
}

// Load replays the persisted state into a snapshot: manifest segments in
// order, then the live log's valid prefix, truncating a torn tail. It
// returns ErrNoState on a fresh directory and must be called before Attach.
func (db *DB) Load() (*replica.Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.r != nil {
		return nil, errors.New("wal: Load after Attach")
	}
	if !db.haveMan {
		db.loaded = true
		return nil, ErrNoState
	}
	st := newRecState()
	for _, seg := range db.man.Segments {
		data, err := db.fsys.ReadFile(seg)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment %s: %w", seg, err)
		}
		if err := st.replaySegment(data); err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", seg, err)
		}
	}
	data, err := db.fsys.ReadFile(db.man.Log)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("wal: read log %s: %w", db.man.Log, err)
	}
	// A missing log file is an empty tail: the manifest commit that named it
	// was durable but the log had no durable appends yet.
	truncated, err := st.replayLog(data)
	if err != nil {
		return nil, fmt.Errorf("wal: log %s: %w", db.man.Log, err)
	}
	snap, err := st.snapshot()
	if err != nil {
		return nil, err
	}
	db.loaded = true
	if db.metrics != nil {
		if truncated {
			db.metrics.TruncatedTails.Inc()
		}
		db.metrics.Recoveries.Inc()
	}
	return snap, nil
}

// Attach binds the DB to r: it checkpoints r's full current state (segment +
// fresh log + manifest swap — after which everything older in the directory
// is garbage and is deleted), then registers a journal hook so every
// subsequent mutation batch is appended and fsynced before the mutating call
// returns. r's state must be the Load result (or a fresh replica on
// ErrNoState); Attach persists whatever r holds, so a mismatch loses
// nothing but wastes the previous state.
func (db *DB) Attach(r *replica.Replica) error {
	snap, err := r.Snapshot()
	if err != nil {
		return fmt.Errorf("wal: attach: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.r != nil {
		return errors.New("wal: already attached")
	}
	if db.haveMan && !db.loaded {
		return errors.New("wal: attach over unloaded state (call Load first)")
	}
	if db.err != nil {
		return db.err
	}
	mem, err := newMemtable(snap)
	if err != nil {
		return fmt.Errorf("wal: attach: %w", err)
	}
	db.mem = mem
	db.r = r
	// Seed the memtable delta with the full state so the attach checkpoint
	// writes everything r holds; checkpointLocked resets the delta after.
	for i := range snap.Entries {
		db.mem.puts[snap.Entries[i].Item.ID] = snap.Entries[i]
	}
	// A full checkpoint: the new segment alone carries the whole state, so
	// it must also be the only one the manifest keeps — retaining older
	// segments would resurrect entries they hold that were since removed
	// (a full segment has no remove records to mask them).
	if err := db.checkpointLocked(snap.PolicyState, true); err != nil {
		db.err = err
		db.r, db.mem = nil, nil
		return err
	}
	r.Journal(db.append)
	return nil
}

// Checkpoint forces a flush now: the memtable delta (plus fresh routing
// policy state) becomes a segment, the manifest adopts it, and the log
// rotates. Callers use it for clean shutdown points; steady-state flushing
// is automatic.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	r := db.r
	db.mu.Unlock()
	if r == nil {
		return errors.New("wal: Checkpoint before Attach")
	}
	// Policy state is read outside db.mu: PolicyState takes the replica
	// lock, and the journal hook (which holds db.mu) may itself be waiting
	// behind a mutating replica call.
	ps, err := r.PolicyState()
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.err != nil {
		return db.err
	}
	if err := db.checkpointLocked(ps, false); err != nil {
		db.err = err
		return err
	}
	return nil
}

// Close detaches the journal hook, checkpoints once more (unless poisoned),
// and closes the log. The DB is unusable afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	r := db.r
	db.mu.Unlock()
	var ps []byte
	if r != nil {
		r.Journal(nil)
		var err error
		if ps, err = r.PolicyState(); err != nil {
			ps = nil
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	err := db.err
	if r != nil && err == nil {
		err = db.checkpointLocked(ps, false)
	}
	if db.log != nil {
		if cerr := db.log.Close(); cerr != nil && err == nil {
			err = cerr
		}
		db.log = nil
	}
	db.r = nil
	if db.err == nil {
		db.err = errors.New("wal: closed")
	}
	return err
}

// append is the registered journal hook: frame the batch, append, fsync,
// fold into the memtable, maybe flush. Any failure poisons the DB.
func (db *DB) append(muts []replica.Mutation) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.err != nil {
		return
	}
	// Frame into the reusable scratch; an oversized or unencodable batch
	// fails here, before any byte reaches the log, so the on-disk state stays
	// replayable (the DB is poisoned, not the recovery path).
	frame, err := appendBatchRecord(db.buf[:0], muts)
	if err != nil {
		db.err = err
		return
	}
	db.buf = frame
	if cap(db.buf) > maxScratchBytes {
		db.buf = nil
	}
	if _, err := db.log.Write(frame); err != nil {
		db.err = fmt.Errorf("wal: append %s: %w", db.curLog, err)
		return
	}
	if err := db.log.Sync(); err != nil {
		db.err = fmt.Errorf("wal: sync %s: %w", db.curLog, err)
		return
	}
	if db.metrics != nil {
		db.metrics.Records.Inc()
		db.metrics.Bytes.Add(int64(len(frame)))
	}
	if err := db.mem.apply(muts); err != nil {
		db.err = err
		return
	}
	db.mem.dirty++
	if db.flushEvery > 0 && db.mem.dirty >= db.flushEvery {
		// Flush with the policy state from the last checkpoint boundary:
		// reading fresh state here would need the replica lock, which a
		// mutating caller may hold while this hook runs. Policy state is
		// checkpoint-grained by contract either way.
		if err := db.checkpointLocked(db.mem.policyState, false); err != nil {
			db.err = err
		}
	}
}

// checkpointLocked flushes the memtable delta: segment out, log rotated,
// manifest swapped, old files deleted, compaction when due. When full is
// set the delta is the whole state (the attach checkpoint), so the new
// segment replaces every older one. On failure the DB state is poisoned by
// callers; the manifest swap's atomicity means the directory itself is
// never in between states.
func (db *DB) checkpointLocked(policyState []byte, full bool) error {
	mem := db.mem
	mem.policyState = policyState
	meta := mem.meta()
	metaFrame, err := appendMetaRecord(nil, meta)
	if err != nil {
		return err
	}

	// 1. Segment: meta + delta, in deterministic order, fsynced. Frames are
	// appended straight into the segment buffer — no per-record slices.
	seg := segName(db.segSeq)
	segBuf := append([]byte(nil), metaFrame...)
	for _, id := range sortedIDs(mem.puts) {
		e := mem.puts[id]
		if segBuf, err = appendPutRecord(segBuf, &e); err != nil {
			return err
		}
	}
	removed := make([]item.ID, 0, len(mem.removes))
	for id := range mem.removes {
		removed = append(removed, id)
	}
	sort.Slice(removed, func(i, j int) bool { return lessID(removed[i], removed[j]) })
	for _, id := range removed {
		if segBuf, err = appendRemoveRecord(segBuf, id); err != nil {
			return err
		}
	}
	if err := writeFile(db.fsys, seg, segBuf); err != nil {
		return err
	}

	// 2. Fresh log generation headed by the same meta, fsynced. Its name and
	// the segment's become durable with the manifest commit's dir sync.
	newLog := logName(db.logSeq)
	nl, err := db.fsys.Create(newLog)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", newLog, err)
	}
	if _, err := nl.Write(metaFrame); err != nil {
		nl.Close() //lint:allow errdiscard -- the write error already aborts the flush; the close failure on the abandoned log adds nothing
		return fmt.Errorf("wal: write %s: %w", newLog, err)
	}
	if err := nl.Sync(); err != nil {
		nl.Close() //lint:allow errdiscard -- the sync error already aborts the flush; the close failure on the abandoned log adds nothing
		return fmt.Errorf("wal: sync %s: %w", newLog, err)
	}

	// 3. Manifest swap: the new segment and log become the truth atomically.
	segments := append(append([]string(nil), db.man.Segments...), seg)
	if full {
		segments = []string{seg}
	}
	man := manifest{Segments: segments, Log: newLog}
	if err := commitManifest(db.fsys, man); err != nil {
		nl.Close() //lint:allow errdiscard -- the commit error already aborts the flush; the close failure on the abandoned log adds nothing
		return err
	}
	oldLog := db.curLog
	oldSegments := db.man.Segments
	if db.log != nil {
		if err := db.log.Close(); err != nil {
			return fmt.Errorf("wal: close %s: %w", oldLog, err)
		}
	}
	db.log, db.curLog = nl, newLog
	db.man, db.haveMan = man, true
	db.segSeq++
	db.logSeq++
	mem.resetDelta()
	if db.metrics != nil {
		db.metrics.Flushes.Inc()
		db.metrics.Records.Inc() // the rotated log's head meta record
		db.metrics.Bytes.Add(int64(len(metaFrame)))
		db.metrics.Segments.Set(int64(len(man.Segments)))
	}

	// 4. Cleanup: the old log — and, after a full checkpoint, the replaced
	// segments — are unreferenced now. Deletion durability rides on the next
	// commit's dir sync; recovery ignores unreferenced files.
	if oldLog != "" {
		if err := db.fsys.Remove(oldLog); err != nil {
			return fmt.Errorf("wal: remove %s: %w", oldLog, err)
		}
	}
	if full {
		for _, old := range oldSegments {
			if err := db.fsys.Remove(old); err != nil {
				return fmt.Errorf("wal: remove %s: %w", old, err)
			}
		}
	}
	if len(db.man.Segments) > db.compactAt {
		return db.compactLocked()
	}
	return nil
}

// compactLocked merges every manifest segment into one and swaps the
// manifest to reference only the merged segment (same log). Recovery
// equivalence is by construction: the merged segment replays to exactly the
// state the originals replayed to.
func (db *DB) compactLocked() error {
	st := newRecState()
	for _, seg := range db.man.Segments {
		data, err := db.fsys.ReadFile(seg)
		if err != nil {
			return fmt.Errorf("wal: compact read %s: %w", seg, err)
		}
		if err := st.replaySegment(data); err != nil {
			return fmt.Errorf("wal: compact %s: %w", seg, err)
		}
	}
	merged := segName(db.segSeq)
	buf, err := appendMetaRecord(nil, st.meta)
	if err != nil {
		return err
	}
	for _, id := range sortedIDs(st.entries) {
		e := st.entries[id]
		if buf, err = appendPutRecord(buf, &e); err != nil {
			return err
		}
	}
	if err := writeFile(db.fsys, merged, buf); err != nil {
		return err
	}
	man := manifest{Segments: []string{merged}, Log: db.man.Log}
	if err := commitManifest(db.fsys, man); err != nil {
		return err
	}
	old := db.man.Segments
	db.man = man
	db.segSeq++
	for _, seg := range old {
		if err := db.fsys.Remove(seg); err != nil {
			return fmt.Errorf("wal: remove %s: %w", seg, err)
		}
	}
	if db.metrics != nil {
		db.metrics.Compactions.Inc()
		db.metrics.Segments.Set(1)
	}
	return nil
}

// writeFile creates name, writes data, and fsyncs it. The name's directory
// entry stays volatile until the caller's next SyncDir (the manifest commit).
func writeFile(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name)
	if err != nil {
		return fmt.Errorf("wal: create %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //lint:allow errdiscard -- the write error already aborts the flush; the close failure on the abandoned file adds nothing
		return fmt.Errorf("wal: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:allow errdiscard -- the sync error already aborts the flush; the close failure on the abandoned file adds nothing
		return fmt.Errorf("wal: sync %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close %s: %w", name, err)
	}
	return nil
}

// memtable is the in-memory fold of everything journaled since the last
// flush (the delta) plus the running meta state (which is always current).
type memtable struct {
	puts    map[item.ID]store.EntrySnapshot
	removes map[item.ID]struct{}
	dirty   int // batches folded since the last flush

	id          vclock.ReplicaID
	seq         uint64
	own         []string
	filterAddrs []string
	know        *vclock.Knowledge
	nextArrival uint64
	policyState []byte
	epoch       uint64
}

// newMemtable seeds the running meta state from an attach-time snapshot.
func newMemtable(snap *replica.Snapshot) (*memtable, error) {
	know := vclock.NewKnowledge()
	if err := know.UnmarshalBinary(snap.Knowledge); err != nil {
		return nil, fmt.Errorf("wal: attach knowledge: %w", err)
	}
	return &memtable{
		puts:        make(map[item.ID]store.EntrySnapshot),
		removes:     make(map[item.ID]struct{}),
		id:          snap.ID,
		seq:         snap.Seq,
		own:         snap.OwnAddresses,
		filterAddrs: snap.FilterAddresses,
		know:        know,
		nextArrival: snap.NextArrival,
		policyState: snap.PolicyState,
		epoch:       snap.Epoch,
	}, nil
}

// apply folds one journaled batch into the memtable.
func (mt *memtable) apply(muts []replica.Mutation) error {
	for i := range muts {
		m := &muts[i]
		switch m.Kind {
		case replica.MutPut:
			if m.Entry == nil || m.Entry.Item == nil {
				return fmt.Errorf("wal: put mutation without entry")
			}
			mt.puts[m.Entry.Item.ID] = *m.Entry
			delete(mt.removes, m.Entry.Item.ID)
			mt.nextArrival = m.NextArrival
		case replica.MutRemove:
			// Record the remove even when the put also happened since the
			// last flush: an older segment may hold a previous version.
			delete(mt.puts, m.ID)
			mt.removes[m.ID] = struct{}{}
			mt.nextArrival = m.NextArrival
		case replica.MutLearn:
			for _, v := range m.Versions {
				mt.know.Add(v)
			}
			mt.seq = m.Seq
		case replica.MutMerge:
			if m.Knowledge == nil {
				return fmt.Errorf("wal: merge mutation lost its knowledge (marshal failure at the source)")
			}
			know := vclock.NewKnowledge()
			if err := know.UnmarshalBinary(m.Knowledge); err != nil {
				return fmt.Errorf("wal: merge mutation: %w", err)
			}
			mt.know = know
		case replica.MutIdentity:
			mt.own = m.Own
			mt.filterAddrs = m.FilterAddrs
		default:
			return fmt.Errorf("wal: unknown mutation kind %d", m.Kind)
		}
	}
	return nil
}

// meta captures the running meta state as a record body.
func (mt *memtable) meta() walMeta {
	know, err := mt.know.MarshalBinary()
	if err != nil {
		// Knowledge marshaling has no failure modes today; guard regardless.
		know = nil
	}
	return walMeta{
		ID:          mt.id,
		Seq:         mt.seq,
		Own:         mt.own,
		FilterAddrs: mt.filterAddrs,
		Knowledge:   know,
		NextArrival: mt.nextArrival,
		PolicyState: mt.policyState,
		Epoch:       mt.epoch,
	}
}

// resetDelta clears the flushed delta; the running meta state carries over.
func (mt *memtable) resetDelta() {
	mt.puts = make(map[item.ID]store.EntrySnapshot)
	mt.removes = make(map[item.ID]struct{})
	mt.dirty = 0
}

// recState is recovery's accumulator: the full state replayed so far.
type recState struct {
	meta     walMeta
	haveMeta bool
	entries  map[item.ID]store.EntrySnapshot
	know     *vclock.Knowledge
}

func newRecState() *recState {
	return &recState{entries: make(map[item.ID]store.EntrySnapshot)}
}

// setMeta wholesale-adopts a meta record, including its knowledge.
func (st *recState) setMeta(m walMeta) error {
	know := vclock.NewKnowledge()
	if err := know.UnmarshalBinary(m.Knowledge); err != nil {
		return fmt.Errorf("%w: meta knowledge: %v", errCorrupt, err)
	}
	if st.haveMeta && st.meta.ID != m.ID {
		return fmt.Errorf("%w: replica ID changed from %s to %s", errCorrupt, st.meta.ID, m.ID)
	}
	st.meta = m
	st.know = know
	st.haveMeta = true
	return nil
}

// replaySegment applies one segment file. Segments are immutable and were
// fsynced before any manifest referenced them: every record must check out.
func (st *recState) replaySegment(data []byte) error {
	off := 0
	first := true
	for off < len(data) {
		rec, next, ok := readRecord(data, off)
		if !ok {
			return fmt.Errorf("%w: segment damaged at offset %d", errCorrupt, off)
		}
		if first && rec.kind != recMeta && rec.kind != recMetaBin {
			return fmt.Errorf("%w: segment does not start with a meta record", errCorrupt)
		}
		first = false
		switch rec.kind {
		case recMeta, recMetaBin:
			m, err := decodeMeta(rec)
			if err != nil {
				return err
			}
			if err := st.setMeta(m); err != nil {
				return err
			}
		case recPut, recPutBin:
			e, err := decodePut(rec)
			if err != nil {
				return err
			}
			st.entries[e.Item.ID] = e
		case recRemove, recRemoveBin:
			id, err := decodeRemove(rec)
			if err != nil {
				return err
			}
			delete(st.entries, id)
		default:
			return fmt.Errorf("%w: unexpected record kind %d in segment", errCorrupt, rec.kind)
		}
		off = next
	}
	if first {
		return fmt.Errorf("%w: empty segment", errCorrupt)
	}
	return nil
}

// replayLog applies the live log's valid prefix and reports whether a torn
// tail was truncated. Damage is only tolerated at the tail — by the fsync
// discipline, everything before the last valid record was durable, so a bad
// frame mid-log would mean silent loss and must fail instead; with
// length-prefixed framing the two are indistinguishable, so the rule is:
// the first invalid frame ends replay, and it is corruption only if the
// decodable records themselves are malformed.
func (st *recState) replayLog(data []byte) (truncated bool, err error) {
	off := 0
	for off < len(data) {
		rec, next, ok := readRecord(data, off)
		if !ok {
			return true, nil // torn tail: drop data[off:]
		}
		switch rec.kind {
		case recMeta, recMetaBin:
			m, derr := decodeMeta(rec)
			if derr != nil {
				return false, derr
			}
			if derr := st.setMeta(m); derr != nil {
				return false, derr
			}
		case recBatch, recBatchBin:
			muts, derr := decodeBatch(rec)
			if derr != nil {
				return false, derr
			}
			if derr := st.applyBatch(muts); derr != nil {
				return false, derr
			}
		default:
			return false, fmt.Errorf("%w: unexpected record kind %d in log", errCorrupt, rec.kind)
		}
		off = next
	}
	return false, nil
}

// applyBatch replays one journaled batch onto the recovered state.
func (st *recState) applyBatch(muts []replica.Mutation) error {
	if !st.haveMeta {
		return fmt.Errorf("%w: batch before any meta record", errCorrupt)
	}
	for i := range muts {
		m := &muts[i]
		switch m.Kind {
		case replica.MutPut:
			if m.Entry == nil || m.Entry.Item == nil {
				return fmt.Errorf("%w: put mutation without entry", errCorrupt)
			}
			st.entries[m.Entry.Item.ID] = *m.Entry
			st.meta.NextArrival = m.NextArrival
		case replica.MutRemove:
			delete(st.entries, m.ID)
			st.meta.NextArrival = m.NextArrival
		case replica.MutLearn:
			for _, v := range m.Versions {
				st.know.Add(v)
			}
			st.meta.Seq = m.Seq
		case replica.MutMerge:
			if m.Knowledge == nil {
				return fmt.Errorf("%w: merge mutation without knowledge", errCorrupt)
			}
			know := vclock.NewKnowledge()
			if err := know.UnmarshalBinary(m.Knowledge); err != nil {
				return fmt.Errorf("%w: merge mutation: %v", errCorrupt, err)
			}
			st.know = know
		case replica.MutIdentity:
			st.meta.Own = m.Own
			st.meta.FilterAddrs = m.FilterAddrs
		default:
			return fmt.Errorf("%w: unknown mutation kind %d", errCorrupt, m.Kind)
		}
	}
	return nil
}

// snapshot materializes the recovered state.
func (st *recState) snapshot() (*replica.Snapshot, error) {
	if !st.haveMeta {
		return nil, fmt.Errorf("%w: no meta record recovered", errCorrupt)
	}
	know, err := st.know.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("wal: marshal recovered knowledge: %w", err)
	}
	snap := &replica.Snapshot{
		ID:              st.meta.ID,
		Seq:             st.meta.Seq,
		OwnAddresses:    st.meta.Own,
		FilterAddresses: st.meta.FilterAddrs,
		Knowledge:       know,
		NextArrival:     st.meta.NextArrival,
		PolicyState:     st.meta.PolicyState,
		Epoch:           st.meta.Epoch,
	}
	for _, id := range sortedIDs(st.entries) {
		snap.Entries = append(snap.Entries, st.entries[id])
	}
	return snap, nil
}

// sortedIDs returns the map's keys in deterministic order.
func sortedIDs(m map[item.ID]store.EntrySnapshot) []item.ID {
	ids := make([]item.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return lessID(ids[i], ids[j]) })
	return ids
}

// lessID orders item IDs deterministically.
func lessID(a, b item.ID) bool {
	if a.Creator != b.Creator {
		return a.Creator < b.Creator
	}
	return a.Num < b.Num
}
