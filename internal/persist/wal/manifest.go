package wal

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
)

// The manifest is the DB's root pointer: the one file naming which segment
// files and which log generation constitute the current state. Everything
// else in the directory is garbage the manifest does not reference. It is
// replaced atomically (temp + fsync + rename + dir fsync), so recovery
// always sees either the old or the new file set, never a mix — and because
// new segments and the new log are created and fsynced before the manifest
// rename, the referenced files are always fully durable by the time any
// manifest names them.

const (
	manifestName    = "MANIFEST"
	manifestTmp     = "MANIFEST.tmp"
	segPrefix       = "seg-"
	logPrefix       = "wal-"
	manifestMagic   = "replidtn-wal"
	manifestVersion = 1
)

// manifest is the on-disk root structure.
type manifest struct {
	Magic   string
	Version int
	// Segments are replayed in order; later segments overwrite earlier ones.
	Segments []string
	// Log is the live log generation, replayed after the segments.
	Log string
}

// segName / logName format generation numbers into file names.
func segName(n uint64) string { return fmt.Sprintf("%s%08d.seg", segPrefix, n) }
func logName(n uint64) string { return fmt.Sprintf("%s%08d.log", logPrefix, n) }

// readManifest loads the current manifest; ok is false when none exists yet
// (a fresh directory).
func readManifest(fsys FS) (man manifest, ok bool, err error) {
	data, err := fsys.ReadFile(manifestName)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return manifest{}, false, nil
		}
		return manifest{}, false, fmt.Errorf("wal: read manifest: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&man); err != nil {
		return manifest{}, false, fmt.Errorf("wal: decode manifest: %w", err)
	}
	if man.Magic != manifestMagic {
		return manifest{}, false, errors.New("wal: not a replidtn wal manifest")
	}
	if man.Version != manifestVersion {
		return manifest{}, false, fmt.Errorf("wal: manifest version %d, want %d", man.Version, manifestVersion)
	}
	return man, true, nil
}

// commitManifest atomically replaces the manifest and makes it — and every
// file created since the last directory sync — durable.
func commitManifest(fsys FS, man manifest) error {
	man.Magic = manifestMagic
	man.Version = manifestVersion
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(man); err != nil {
		return fmt.Errorf("wal: encode manifest: %w", err)
	}
	f, err := fsys.Create(manifestTmp)
	if err != nil {
		return fmt.Errorf("wal: create manifest temp: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close() //lint:allow errdiscard -- the write error already aborts the commit; the close failure on the doomed temp file adds nothing
		return fmt.Errorf("wal: write manifest temp: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:allow errdiscard -- the sync error already aborts the commit; the close failure on the doomed temp file adds nothing
		return fmt.Errorf("wal: sync manifest temp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close manifest temp: %w", err)
	}
	if err := fsys.Rename(manifestTmp, manifestName); err != nil {
		return fmt.Errorf("wal: commit manifest: %w", err)
	}
	if err := fsys.SyncDir(); err != nil {
		return fmt.Errorf("wal: commit manifest: %w", err)
	}
	return nil
}
