package persist

// Differential property test for the two persistence backends: for random
// mutation sequences, the state the WAL backend recovers after a hard crash
// must be semantically identical to what the gob snapshot encoder would have
// captured from the live replica at the same instant. The snapshot path is
// the reference implementation — a direct, whole-state serialization with
// years fewer moving parts — so any divergence indicts the WAL's journal,
// flush, compaction, or replay logic.
//
// The crash is a real one (MemFS drops unsynced bytes): this checks not just
// that replay composes mutations correctly, but that every mutating call's
// effects were durable by the time it returned.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"replidtn/internal/filter"
	"replidtn/internal/item"
	"replidtn/internal/persist/wal"
	"replidtn/internal/replica"
)

// randomOps drives n random mutations against r, pulling sync batches from
// peer. Every journaled mutation kind is reachable: creates, updates,
// tombstones, relayed batches with eviction, knowledge merges, identity
// flips, and expiry purges.
func randomOps(t *testing.T, rng *rand.Rand, r, peer *replica.Replica, now *int64, n int) {
	t.Helper()
	sync := func() {
		req := r.MakeSyncRequest(0)
		resp := peer.HandleSyncRequest(req)
		r.ApplyBatch(resp)
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			r.CreateItem(item.Metadata{Destinations: []string{"alice"}}, []byte(fmt.Sprintf("l-%d", i)))
		case 1:
			peer.CreateItem(item.Metadata{Destinations: []string{"carol"}}, []byte(fmt.Sprintf("r-%d", i)))
			sync()
		case 2:
			if items := r.Items(); len(items) > 0 {
				pick := items[rng.Intn(len(items))]
				if _, err := r.UpdateItem(pick.ID, []byte(fmt.Sprintf("u-%d", i))); err != nil {
					t.Fatalf("update: %v", err)
				}
			}
		case 3:
			peer.CreateItem(item.Metadata{Destinations: []string{"alice"}, Created: *now, Expires: *now + int64(100+rng.Intn(400))}, []byte(fmt.Sprintf("in-%d", i)))
			sync()
		case 4:
			if items := r.Items(); len(items) > 0 {
				if _, err := r.DeleteItem(items[rng.Intn(len(items))].ID); err != nil {
					t.Fatalf("delete: %v", err)
				}
			}
		case 5:
			addrs := []string{"alice"}
			if rng.Intn(2) == 0 {
				addrs = append(addrs, "carol")
			}
			r.SetIdentity(addrs, nil)
		case 6:
			*now += int64(rng.Intn(500))
			r.PurgeExpired()
		case 7:
			peer.CreateItem(item.Metadata{Destinations: []string{"dave"}}, []byte(fmt.Sprintf("w-%d", i)))
			sync()
		}
	}
}

// TestWALMatchesSnapshotDifferential is the property itself, checked over
// quick-generated seeds so each counterexample is reproducible from the seed
// in the failure message.
func TestWALMatchesSnapshotDifferential(t *testing.T) {
	prop := func(seed int64) bool {
		return walMatchesSnapshot(t, seed)
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func walMatchesSnapshot(t *testing.T, seed int64) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := int64(1000)
	r := replica.New(replica.Config{
		ID:             "diff-a",
		OwnAddresses:   []string{"alice"},
		RelayCapacity:  3,
		MergeKnowledge: true,
		Now:            func() int64 { return now },
	})
	peer := replica.New(replica.Config{
		ID:           "diff-b",
		OwnAddresses: []string{"bob"},
		Filter:       filter.NewAddresses("alice", "bob", "carol", "dave"),
	})

	// Random WAL shape too: tiny flush/compaction thresholds make short op
	// sequences cross segment and compaction boundaries.
	opts := wal.Options{
		FlushEvery: []int{1, 2, 3, 256}[rng.Intn(4)],
		CompactAt:  []int{2, 4}[rng.Intn(2)],
	}
	fsys := wal.NewMemFS()
	db, err := wal.Open(fsys, opts)
	if err != nil {
		t.Fatalf("seed %d: open: %v", seed, err)
	}
	if _, err := db.Load(); !errors.Is(err, wal.ErrNoState) {
		t.Fatalf("seed %d: fresh load: %v", seed, err)
	}
	if err := db.Attach(r); err != nil {
		t.Fatalf("seed %d: attach: %v", seed, err)
	}

	randomOps(t, rng, r, peer, &now, 24+rng.Intn(32))
	if err := db.Err(); err != nil {
		t.Fatalf("seed %d: wal poisoned: %v", seed, err)
	}

	// Reference: the gob snapshot wire format round-tripped from the live
	// replica — what `-data-backend snapshot` would persist right now.
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		t.Fatalf("seed %d: encode: %v", seed, err)
	}
	want, err := Decode(&buf)
	if err != nil {
		t.Fatalf("seed %d: decode: %v", seed, err)
	}

	// Hard crash: everything unsynced is gone; only what the WAL fsynced
	// before each mutating call returned survives.
	fsys.Crash()
	db2, err := wal.Open(fsys, opts)
	if err != nil {
		t.Fatalf("seed %d: reopen: %v", seed, err)
	}
	got, err := db2.Load()
	if err != nil {
		t.Fatalf("seed %d: recover: %v", seed, err)
	}
	if d := wal.DiffSnapshots(want, got); d != "" {
		t.Logf("seed %d: WAL recovery diverges from snapshot encoding: %s", seed, d)
		return false
	}
	return true
}
