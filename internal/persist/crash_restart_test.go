package persist

import (
	"fmt"
	"path/filepath"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
)

// TestCrashRestartMidRun is the end-to-end disruption scenario: a relay node
// carrying messages between two endpoints is killed mid-run — its process
// state discarded, only the snapshot file surviving — reloaded through Load,
// and the run continues. Every message must still arrive exactly once: the
// persisted knowledge stops the restarted relay from re-accepting what it
// already carried, and the persisted store lets it keep forwarding it.
func TestCrashRestartMidRun(t *testing.T) {
	const n = 6
	path := filepath.Join(t.TempDir(), "relay.snap")

	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: epidemic.New(10)})
	relayCfg := replica.Config{ID: "relay", OwnAddresses: []string{"addr:relay"}, Policy: epidemic.New(10)}
	relay := replica.New(relayCfg)
	delivered := make(map[item.ID]int)
	b := replica.New(replica.Config{
		ID: "b", OwnAddresses: []string{"addr:b"}, Policy: epidemic.New(10),
		OnDeliver: func(it *item.Item) { delivered[it.ID]++ },
	})

	msgs := make([]*item.Item, n)
	for i := range msgs {
		msgs[i] = a.CreateItem(item.Metadata{
			Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
		}, []byte(fmt.Sprintf("m-%d", i)))
	}

	// The relay picks up half the messages, persists, and "crashes": the
	// in-memory replica is abandoned, and only the snapshot file survives.
	res := replica.EncounterBudget(a, relay, replica.Budget{Items: n / 2})
	if res.AtoB.Sent != n/2 {
		t.Fatalf("relay picked up %d messages, want %d", res.AtoB.Sent, n/2)
	}
	if err := Save(path, relay); err != nil {
		t.Fatal(err)
	}
	relay = nil

	// Reboot from disk. The restored relay must identify as the same node
	// with the same knowledge, so the remaining sync moves only the rest.
	relay2, err := Load(path, relayCfg)
	if err != nil {
		t.Fatal(err)
	}
	res = replica.EncounterBudget(a, relay2, replica.Budget{})
	if res.AtoB.Sent != n-n/2 {
		t.Errorf("post-restart pickup moved %d messages, want %d (knowledge lost?)", res.AtoB.Sent, n-n/2)
	}
	if relay2.Stats().Duplicates != 0 {
		t.Errorf("restarted relay re-accepted %d known messages", relay2.Stats().Duplicates)
	}

	// The restarted relay delivers everything to b exactly once.
	replica.EncounterBudget(relay2, b, replica.Budget{})
	if len(delivered) != n {
		t.Fatalf("delivered %d distinct messages, want %d", len(delivered), n)
	}
	for _, m := range msgs {
		if delivered[m.ID] != 1 {
			t.Errorf("message %s delivered %d times, want 1", m.ID, delivered[m.ID])
		}
	}
	if b.Stats().Duplicates != 0 {
		t.Errorf("b saw %d duplicates", b.Stats().Duplicates)
	}

	// A second crash-restart after delivery changes nothing: repeat
	// encounters move nothing and deliver nothing new.
	if err := Save(path, relay2); err != nil {
		t.Fatal(err)
	}
	relay3, err := Load(path, relayCfg)
	if err != nil {
		t.Fatal(err)
	}
	res = replica.EncounterBudget(relay3, b, replica.Budget{})
	if res.AtoB.Sent != 0 || res.BtoA.Sent != 0 {
		t.Errorf("steady-state encounter moved items: %+v", res)
	}
	for _, m := range msgs {
		if delivered[m.ID] != 1 {
			t.Errorf("message %s delivered %d times after second restart", m.ID, delivered[m.ID])
		}
	}
}

// TestCrashBeforeSaveLosesOnlyVolatileProgress: a crash that happens before
// any snapshot was written boots the node fresh; the network re-sends
// everything and the destination still sees each message exactly once,
// because at-most-once is enforced by the *receiver's* knowledge, not the
// relay's memory.
func TestCrashBeforeSaveLosesOnlyVolatileProgress(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}, Policy: epidemic.New(10)})
	relayCfg := replica.Config{ID: "relay", OwnAddresses: []string{"addr:relay"}, Policy: epidemic.New(10)}
	relay := replica.New(relayCfg)
	delivered := 0
	b := replica.New(replica.Config{
		ID: "b", OwnAddresses: []string{"addr:b"}, Policy: epidemic.New(10),
		OnDeliver: func(*item.Item) { delivered++ },
	})
	for i := 0; i < 3; i++ {
		a.CreateItem(item.Metadata{
			Source: "addr:a", Destinations: []string{"addr:b"}, Kind: "message",
		}, []byte(fmt.Sprintf("v-%d", i)))
	}
	replica.EncounterBudget(a, relay, replica.Budget{})

	// Crash with nothing on disk: the relay reboots empty.
	relay = replica.New(relayCfg)
	res := replica.EncounterBudget(a, relay, replica.Budget{})
	if res.AtoB.Sent != 3 {
		t.Errorf("fresh relay re-pulled %d messages, want 3", res.AtoB.Sent)
	}
	replica.EncounterBudget(relay, b, replica.Budget{})
	if delivered != 3 || b.Stats().Duplicates != 0 {
		t.Errorf("delivered %d (want 3), duplicates %d (want 0)", delivered, b.Stats().Duplicates)
	}
}
