// Package persist stores replica state durably on disk, fulfilling the
// paper's requirement that replicas and their routing policies keep
// "persistent data structures which are serialized to disk and retrieved
// whenever a synchronization operation is invoked" (§V.A).
//
// Persisting the knowledge is what extends the substrate's at-most-once
// delivery guarantee across process restarts: a restarted node never
// re-accepts versions it had already learned.
//
// Files are written atomically (temp file + rename) and carry a magic header
// and format version, so a torn write or a foreign file is detected rather
// than silently mis-restored.
package persist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"replidtn/internal/replica"
)

// magic identifies replidtn snapshot files.
const magic = "replidtn-snap"

// formatVersion guards the snapshot encoding.
const formatVersion = 1

// ErrNotExist is reported by Load when no snapshot file exists yet.
var ErrNotExist = errors.New("persist: snapshot does not exist")

// envelope is the on-disk structure.
type envelope struct {
	Magic    string
	Version  int
	Snapshot *replica.Snapshot
}

// Encode writes the replica's durable state to w in the snapshot wire
// format — the same bytes Save writes to disk. Callers that do not need a
// file (the emulator's in-memory crash-restart, tests, network shipping of
// snapshots) use this directly.
func Encode(w io.Writer, r *replica.Replica) error {
	snap, err := r.Snapshot()
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return EncodeSnapshot(w, snap)
}

// EncodeSnapshot writes an already-captured snapshot to w in the wire format.
func EncodeSnapshot(w io.Writer, snap *replica.Snapshot) error {
	env := envelope{Magic: magic, Version: formatVersion, Snapshot: snap}
	//lint:allow transientleak -- a snapshot restores the same host after a crash, so its own per-copy transient state (spray allowances, hop budgets) legitimately survives; nothing here crosses to another replica
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("persist: encode snapshot: %w", err)
	}
	return nil
}

// Decode reads and validates a snapshot from rd (the inverse of Encode).
func Decode(rd io.Reader) (*replica.Snapshot, error) {
	var env envelope
	if err := gob.NewDecoder(rd).Decode(&env); err != nil {
		return nil, fmt.Errorf("persist: decode snapshot: %w", err)
	}
	if env.Magic != magic {
		return nil, errors.New("persist: not a replidtn snapshot")
	}
	if env.Version != formatVersion {
		return nil, fmt.Errorf("persist: snapshot format version %d, want %d", env.Version, formatVersion)
	}
	if env.Snapshot == nil {
		return nil, errors.New("persist: empty snapshot envelope")
	}
	return env.Snapshot, nil
}

// Save atomically writes the replica's durable state to path.
func Save(path string, r *replica.Replica) error {
	var buf bytes.Buffer
	if err := Encode(&buf, r); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) //lint:allow errdiscard -- best-effort scratch cleanup: a no-op after the rename commits, and a leftover temp file cannot corrupt the committed snapshot
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close() //lint:allow errdiscard -- the write error already aborts the save; the close failure on the doomed temp file adds nothing
		return fmt.Errorf("persist: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //lint:allow errdiscard -- the sync error already aborts the save; the close failure on the doomed temp file adds nothing
		return fmt.Errorf("persist: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("persist: commit %s: %w", path, err)
	}
	// The rename is only durable once the parent directory's entry table
	// is: without this fsync a crash shortly after Save can roll the
	// directory back to the old entry — or, for a first save, to no
	// snapshot at all — on real filesystems, even though Save returned
	// success. (The temp file's data blocks were synced above; this pins
	// the name.)
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("persist: commit %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory, making its current entries durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close() //lint:allow errdiscard -- the sync error already aborts the commit; the close failure on a read-only directory handle adds nothing
		return err
	}
	return d.Close()
}

// LoadSnapshot reads and validates a snapshot file without building a
// replica, for callers (like the messaging layer) that own replica
// construction. It returns ErrNotExist when the file is missing, so first
// boots are distinguishable from corruption.
func LoadSnapshot(path string) (*replica.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotExist
		}
		return nil, fmt.Errorf("persist: read %s: %w", path, err)
	}
	snap, err := Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return snap, nil
}

// Load reads a snapshot from path and restores it into a replica built from
// cfg (which supplies the non-durable configuration: policy instance, relay
// capacity, delivery callback).
func Load(path string, cfg replica.Config) (*replica.Replica, error) {
	snap, err := LoadSnapshot(path)
	if err != nil {
		return nil, err
	}
	r := replica.New(cfg)
	if err := r.RestoreSnapshot(snap); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return r, nil
}
