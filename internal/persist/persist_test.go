package persist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/replica"
	"replidtn/internal/routing/epidemic"
	"replidtn/internal/routing/prophet"
	"replidtn/internal/vclock"
)

func mkMsg(r *replica.Replica, from, to string) *item.Item {
	return r.CreateItem(item.Metadata{
		Source: from, Destinations: []string{to}, Kind: "message",
	}, []byte("persisted"))
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.snap")
	cfg := replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}}
	a := replica.New(cfg)
	msg := mkMsg(a, "addr:a", "addr:b")
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.HasItem(msg.ID) {
		t.Error("restored replica missing item")
	}
	if !restored.Knowledge().Contains(msg.Version) {
		t.Error("restored replica missing knowledge")
	}
	// The version counter must continue, not restart: a new item must not
	// collide with the persisted one.
	next := mkMsg(restored, "addr:a", "addr:c")
	if next.ID == msg.ID {
		t.Error("version counter restarted after restore")
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.snap"), replica.Config{ID: "a"})
	if !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.snap")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, replica.Config{ID: "a"}); err == nil {
		t.Error("garbage file should fail to load")
	}
	// Truncated real snapshot.
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	mkMsg(a, "addr:a", "addr:b")
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, replica.Config{ID: "a"}); err == nil {
		t.Error("truncated snapshot should fail to load")
	}
}

func TestLoadRejectsWrongReplica(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.snap")
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, replica.Config{ID: "b"}); err == nil {
		t.Error("snapshot for another replica should be rejected")
	}
}

func TestAtMostOncePersistsAcrossRestart(t *testing.T) {
	// b receives a's message, persists, "crashes", restarts from disk, and
	// meets a again: the message must not be re-accepted.
	dir := t.TempDir()
	path := filepath.Join(dir, "b.snap")
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	cfgB := replica.Config{ID: "b", OwnAddresses: []string{"addr:b"}}
	b := replica.New(cfgB)
	mkMsg(a, "addr:a", "addr:b")
	replica.Sync(a, b, 0)
	if b.Stats().Delivered != 1 {
		t.Fatal("setup: delivery failed")
	}
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	b2, err := Load(path, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	res := replica.Sync(a, b2, 0)
	if res.Sent != 0 {
		t.Errorf("restarted replica re-received %d items", res.Sent)
	}
	if b2.Stats().Delivered != 0 {
		t.Error("restored item must not re-deliver")
	}
}

func TestTransientStateSurvivesRestart(t *testing.T) {
	// Epidemic TTLs are per-copy transients; they must survive restarts or
	// restarted nodes would re-flood with a fresh hop budget.
	dir := t.TempDir()
	path := filepath.Join(dir, "r.snap")
	a := replica.New(replica.Config{
		ID: "a", OwnAddresses: []string{"addr:a"}, Policy: epidemic.New(3),
	})
	cfgR := replica.Config{
		ID: "r", OwnAddresses: []string{"addr:r"}, Policy: epidemic.New(3),
	}
	rel := replica.New(cfgR)
	msg := mkMsg(a, "addr:a", "addr:z")
	replica.Sync(a, rel, 0)
	wantTTL := rel.Entry(msg.ID).Transient.GetInt(item.FieldTTL)
	if err := Save(path, rel); err != nil {
		t.Fatal(err)
	}
	rel2, err := Load(path, cfgR)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel2.Entry(msg.ID).Transient.GetInt(item.FieldTTL); got != wantTTL {
		t.Errorf("TTL after restart = %d, want %d", got, wantTTL)
	}
}

func TestProphetStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.snap")
	var now int64
	clock := func() int64 { return now }
	mk := func(id, addr string) (*replica.Replica, replica.Config) {
		cfg := replica.Config{
			ID:           vclock.ReplicaID(id),
			OwnAddresses: []string{addr},
			Policy:       prophet.New(prophet.DefaultParams(), clock, addr),
		}
		return replica.New(cfg), cfg
	}
	a, _ := mk("a", "addr:a")
	b, _ := mk("b", "addr:b")
	replica.Encounter(a, b, 0) // a's policy learns about addr:b
	pol := a.Policy().(*prophet.Policy)
	want := pol.Predictability("addr:b")
	if want <= 0 {
		t.Fatal("setup: no predictability learned")
	}
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	// Restart with a fresh policy instance; restore must repopulate it.
	freshPolicy := prophet.New(prophet.DefaultParams(), clock, "addr:a")
	a2, err := Load(path, replica.Config{
		ID: "a", OwnAddresses: []string{"addr:a"}, Policy: freshPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := freshPolicy.Predictability("addr:b"); got != want {
		t.Errorf("predictability after restart = %v, want %v", got, want)
	}
	_ = a2
}

func TestSnapshotPolicyStateWithoutPersistentPolicy(t *testing.T) {
	// Loading a snapshot that carries policy state into a config without a
	// persistent policy must fail loudly rather than drop routing state.
	dir := t.TempDir()
	path := filepath.Join(dir, "a.snap")
	var now int64
	clock := func() int64 { return now }
	cfg := replica.Config{
		ID:           "a",
		OwnAddresses: []string{"addr:a"},
		Policy:       prophet.New(prophet.DefaultParams(), clock, "addr:a"),
	}
	a := replica.New(cfg)
	b := replica.New(replica.Config{
		ID: "b", OwnAddresses: []string{"addr:b"},
		Policy: prophet.New(prophet.DefaultParams(), clock, "addr:b"),
	})
	replica.Encounter(a, b, 0)
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}}); err == nil {
		t.Error("expected failure when dropping persistent policy state")
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.snap")
	cfg := replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}}
	a := replica.New(cfg)
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	mkMsg(a, "addr:a", "addr:b")
	if err := Save(path, a); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if total, _, _ := restored.StoreLen(); total != 1 {
		t.Errorf("restored store has %d entries, want 1", total)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d files, want 1", len(entries))
	}
}

func TestSaveToUnwritableDirectory(t *testing.T) {
	a := replica.New(replica.Config{ID: "a", OwnAddresses: []string{"addr:a"}})
	if err := Save("/dev/null/nope/a.snap", a); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestLoadWrongMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.snap")
	// A valid gob envelope with the wrong magic.
	write := func(env envelope) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(env); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(envelope{Magic: "other", Version: formatVersion})
	if _, err := LoadSnapshot(path); err == nil {
		t.Error("wrong magic should fail")
	}
	write(envelope{Magic: magic, Version: formatVersion + 1})
	if _, err := LoadSnapshot(path); err == nil {
		t.Error("wrong version should fail")
	}
	write(envelope{Magic: magic, Version: formatVersion})
	if _, err := LoadSnapshot(path); err == nil {
		t.Error("missing snapshot payload should fail")
	}
}
