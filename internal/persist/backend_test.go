package persist

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"replidtn/internal/item"
	"replidtn/internal/obs"
	"replidtn/internal/replica"
)

// exerciseBackend runs the common Backend lifecycle against kind rooted at
// path: first boot (ErrNotExist), attach, mutate, close, reopen, verify the
// restored replica carries the items and continues its version counter.
func exerciseBackend(t *testing.T, kind, path string) {
	t.Helper()
	cfg := replica.Config{ID: "n", OwnAddresses: []string{"addr:n"}}

	b, err := OpenBackend(kind, path, nil)
	if err != nil {
		t.Fatalf("open %s: %v", kind, err)
	}
	if _, err := b.Load(); !errors.Is(err, ErrNotExist) {
		t.Fatalf("first boot Load = %v, want ErrNotExist", err)
	}
	r := replica.New(cfg)
	if err := b.Attach(r); err != nil {
		t.Fatalf("attach: %v", err)
	}
	var ids []item.ID
	for i := 0; i < 3; i++ {
		it := r.CreateItem(item.Metadata{Source: "addr:n", Destinations: []string{"addr:m"}}, []byte(fmt.Sprintf("m-%d", i)))
		ids = append(ids, it.ID)
	}
	if err := b.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	b2, err := OpenBackend(kind, path, nil)
	if err != nil {
		t.Fatalf("reopen %s: %v", kind, err)
	}
	defer b2.Close() //lint:allow errdiscard -- read-only reopen in a test; Close failure cannot invalidate the assertions already made
	snap, err := b2.Load()
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	r2 := replica.New(cfg)
	if err := r2.RestoreSnapshot(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, id := range ids {
		if !r2.HasItem(id) {
			t.Errorf("restored replica missing %s", id)
		}
	}
	next := r2.CreateItem(item.Metadata{Source: "addr:n", Destinations: []string{"addr:m"}}, []byte("post"))
	for _, id := range ids {
		if next.ID == id {
			t.Error("version counter restarted after backend reload")
		}
	}
}

func TestBackendLifecycle(t *testing.T) {
	t.Run("snapshot", func(t *testing.T) {
		exerciseBackend(t, "snapshot", filepath.Join(t.TempDir(), "n.snap"))
	})
	t.Run("wal", func(t *testing.T) {
		exerciseBackend(t, "wal", filepath.Join(t.TempDir(), "waldir"))
	})
}

func TestOpenBackendUnknownKind(t *testing.T) {
	if _, err := OpenBackend("etcd", t.TempDir(), nil); err == nil {
		t.Error("unknown backend kind should fail")
	}
}

func TestWALBackendReportsMetrics(t *testing.T) {
	var m obs.WALMetrics
	b, err := OpenBackend("wal", filepath.Join(t.TempDir(), "w"), &m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(); !errors.Is(err, ErrNotExist) {
		t.Fatalf("load: %v", err)
	}
	r := replica.New(replica.Config{ID: "n", OwnAddresses: []string{"addr:n"}})
	if err := b.Attach(r); err != nil {
		t.Fatal(err)
	}
	r.CreateItem(item.Metadata{Destinations: []string{"addr:m"}}, []byte("x"))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.Records == 0 || snap.Bytes == 0 {
		t.Errorf("wal metrics not wired: %+v", snap)
	}
}

// TestSyncDir pins the directory-fsync helper behind the Save commit:
// success on a real directory, a loud error when the directory cannot be
// opened. Regression test for Save renaming the snapshot into place without
// ever syncing the parent directory — on a real filesystem that window lets
// a crash roll the directory entry back even though Save reported success.
func TestSyncDir(t *testing.T) {
	if err := syncDir(t.TempDir()); err != nil {
		t.Errorf("syncDir on real dir: %v", err)
	}
	if err := syncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("syncDir on missing dir should fail")
	}
}
