package persist

import (
	"errors"
	"fmt"

	"replidtn/internal/obs"
	"replidtn/internal/persist/wal"
	"replidtn/internal/replica"
)

// Backend is a pluggable durability strategy for one replica. Two ship:
//
//   - "snapshot": the original whole-state gob file (this package's
//     Save/LoadSnapshot) — O(store) bytes per checkpoint, durable only at
//     checkpoints. path is the snapshot file.
//   - "wal": the incremental write-ahead log (internal/persist/wal) —
//     O(mutation) per mutation, durable the moment each mutating call
//     returns, crash recovery with torn-tail truncation. path is a
//     directory.
//
// Lifecycle for both: Load (ErrNotExist on first boot) → build the replica,
// RestoreSnapshot unless first boot → Attach → mutate freely → Checkpoint at
// will → Close.
type Backend interface {
	// Load returns the persisted snapshot, or ErrNotExist when the backend
	// holds no state yet.
	Load() (*replica.Snapshot, error)
	// Attach binds the backend to the replica it persists. The snapshot
	// backend only remembers the replica for later checkpoints; the WAL
	// backend checkpoints immediately and journals every mutation from
	// this call on.
	Attach(r *replica.Replica) error
	// Checkpoint forces a full durable write now.
	Checkpoint() error
	// Close checkpoints once more and releases the backend.
	Close() error
}

// BackendKinds lists the accepted OpenBackend kinds, for flag help text.
const BackendKinds = "snapshot, wal"

// OpenBackend opens the named backend kind rooted at path. walMetrics is
// mirrored by the wal backend and ignored by snapshot; nil disables.
func OpenBackend(kind, path string, walMetrics *obs.WALMetrics) (Backend, error) {
	switch kind {
	case "snapshot":
		return &snapshotBackend{path: path}, nil
	case "wal":
		fsys, err := wal.NewOSFS(path)
		if err != nil {
			return nil, err
		}
		db, err := wal.Open(fsys, wal.Options{Metrics: walMetrics})
		if err != nil {
			return nil, err
		}
		return &walBackend{db: db}, nil
	}
	return nil, fmt.Errorf("persist: unknown backend %q (have: %s)", kind, BackendKinds)
}

// snapshotBackend adapts the classic snapshot file to the Backend interface.
type snapshotBackend struct {
	path string
	r    *replica.Replica
}

func (b *snapshotBackend) Load() (*replica.Snapshot, error) {
	return LoadSnapshot(b.path)
}

func (b *snapshotBackend) Attach(r *replica.Replica) error {
	if b.r != nil {
		return errors.New("persist: already attached")
	}
	b.r = r
	return nil
}

func (b *snapshotBackend) Checkpoint() error {
	if b.r == nil {
		return errors.New("persist: Checkpoint before Attach")
	}
	return Save(b.path, b.r)
}

func (b *snapshotBackend) Close() error {
	if b.r == nil {
		return nil
	}
	err := Save(b.path, b.r)
	b.r = nil
	return err
}

// walBackend adapts a wal.DB to the Backend interface, mapping its
// first-boot sentinel onto this package's.
type walBackend struct {
	db *wal.DB
}

func (b *walBackend) Load() (*replica.Snapshot, error) {
	snap, err := b.db.Load()
	if errors.Is(err, wal.ErrNoState) {
		return nil, ErrNotExist
	}
	return snap, err
}

func (b *walBackend) Attach(r *replica.Replica) error { return b.db.Attach(r) }
func (b *walBackend) Checkpoint() error               { return b.db.Checkpoint() }
func (b *walBackend) Close() error                    { return b.db.Close() }
